// The minimpi engine: a virtual-time MPI-subset runtime.
//
// Ranks execute inside one process, either as OS threads (the default) or
// as cooperatively scheduled stackful fibers of a single OS thread
// dispatched in (virtual clock, rank) order -- the SimGrid/SMPI execution
// model that makes np=1024-4096 worlds practical on a small host
// (EngineConfig::sched, MPIM_SCHED=threads|fibers). Either way, every rank
// owns a monotone virtual clock that only advances through engine calls:
//   - compute/sleep advance it directly,
//   - a send charges the sender a small overhead (LogP "o") and stamps the
//     message with arrival = sender_clock + alpha(link) + bytes/beta(link),
//   - a receive completes at max(receiver_clock, arrival) + recv_overhead.
// Timings are therefore deterministic functions of the program and the
// cost model, independent of host scheduling (the host has a single core).
//
// Every packet that leaves a rank flows through one send hook carrying
// (src, dst, bytes, kind, tag, context) -- the moral equivalent of Open
// MPI's pml_monitoring component interposition point. Tool-kind traffic
// (the monitoring library's own gathers) bypasses the hook, and optionally
// simulated NIC hardware counters record every transfer that crosses a
// node boundary.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "minimpi/comm.h"
#include "minimpi/types.h"
#include "netmodel/cost_model.h"
#include "netmodel/nic_counters.h"
#include "topo/fabric.h"
#include "support/rng.h"
#include "telemetry/hub.h"
#include "topo/topology.h"

namespace mpim::fault {
class FaultPlan;
}

namespace mpim::mpi {

/// Everything the monitoring layer learns about one packet.
struct PktInfo {
  int src_world = -1;
  int dst_world = -1;
  std::size_t bytes = 0;
  CommKind kind = CommKind::p2p;
  int tag = 0;
  int context_id = -1;
  double send_time_s = 0.0;  ///< sender's virtual clock at injection
  /// Transmission attempts the fault plan charged for this message
  /// (1 = delivered first try; >1 means attempts-1 retransmissions).
  int attempts = 1;
  /// Per-sender monotone sequence number (1-based), stamped on every send
  /// regardless of observers. Together with src_world it names the
  /// happens-before edge this packet carries, so the critical-path profiler
  /// can join a receiver's completion back to the matching send event.
  std::uint64_t send_seq = 0;
};

/// Happens-before observation hooks for the critical-path profiler
/// (src/critpath). Both run on the acting rank's own thread, must never
/// charge virtual time, and must not take locks that clock-advancing paths
/// also take: on_recv fires while the receiving rank's inbox mutex is held.
/// Times are virtual seconds.
struct CritHooks {
  /// After a send charged its costs. `tx_start` is when the wire transfer
  /// began (>= t0 under NIC contention), `arrival` when the packet reaches
  /// the receiver (< 0 for a transmission the fault plan lost), `t1` the
  /// sender's clock after the send completed locally.
  std::function<void(int rank, const PktInfo& pkt, double t0, double tx_start,
                     double arrival, double t1)>
      on_send;
  /// At receive completion. `pre` is the receiver's clock when it matched,
  /// `arrival` the packet arrival time, `t1` the completion clock
  /// (max(pre, arrival) + recv_overhead).
  std::function<void(int rank, const PktInfo& pkt, double pre, double arrival,
                     double t1)>
      on_recv;
};

/// Installed by the tool layer (mpit). Returns the number of monitoring
/// records made so the engine can charge instrumentation overhead.
///
/// Concurrency contract: the hook runs on rank threads, concurrently and
/// without any engine-side lock. `caller_world` is the rank whose thread is
/// executing the call; it equals `pkt.src_world` for ordinary sends, but an
/// RMA transfer reports its traffic attributed to `pkt.src_world` from
/// whichever rank thread issued it, so the hook may read and update one
/// rank's monitoring state from another rank's thread. Implementations must
/// therefore be thread-safe without serializing the per-packet path (see
/// mpit::Runtime::on_send for the lock-free RecordingPlan this enables).
using SendHook = std::function<int(const PktInfo&, int caller_world)>;

/// Per-communicator error-handling mode, the MPI_ERRORS_ARE_FATAL /
/// MPI_ERRORS_RETURN analog. Under `fatal` (the default) an operation that
/// depends on a crashed rank records the error and tears the whole run
/// down; under `ret` it throws a typed RankFailedError/TimeoutError that
/// the calling layer may catch and turn into a degraded result.
enum class ErrMode { fatal, ret };

/// Rank execution backend. `threads` spawns one OS thread per rank;
/// `fibers` runs every rank as a stackful ucontext fiber of the calling
/// thread, switched cooperatively at the engine's blocking points (inbox
/// waits, timed receives, NIC-gate waits) and dispatched from a min-heap
/// ready queue keyed by virtual time. Virtual clocks are bit-identical
/// across the two backends; fibers exist so world size stops being bounded
/// by what the OS scheduler tolerates.
enum class SchedMode { threads, fibers };

const char* sched_mode_name(SchedMode mode);

enum class BcastAlgo { binomial, linear };
enum class ReduceAlgo { binary_tree, binomial, linear };
enum class AllreduceAlgo { recursive_doubling, reduce_bcast };
enum class AllgatherAlgo { ring, bruck };
enum class GatherAlgo { binomial, linear };
enum class BarrierAlgo { dissemination, tree };
enum class AlltoallAlgo { pairwise };

/// Per-collective algorithm selection. Defaults match the paper's Fig. 5
/// captions: binomial-tree broadcast, binary-tree reduce.
struct CollAlgos {
  BcastAlgo bcast = BcastAlgo::binomial;
  ReduceAlgo reduce = ReduceAlgo::binary_tree;
  AllreduceAlgo allreduce = AllreduceAlgo::recursive_doubling;
  AllgatherAlgo allgather = AllgatherAlgo::ring;
  GatherAlgo gather = GatherAlgo::binomial;
  BarrierAlgo barrier = BarrierAlgo::dissemination;
  AlltoallAlgo alltoall = AlltoallAlgo::pairwise;
};

struct EngineConfig {
  net::CostModel cost_model;
  /// world rank -> processing unit; size defines the world size.
  topo::Placement placement;
  /// Optional fabric selection ("tree" | "fattree:<k,l,osub>" |
  /// "dragonfly:<a,g,h>[,valiant]", see topo::parse_fabric_spec). When set
  /// -- or when the strict-parsed MPIM_TOPO environment variable overrides
  /// it -- the engine replaces cost_model with
  /// CostModel::for_fabric(make_fabric(spec)) sized to hold the placement,
  /// keeping the configured placement when it still fits the new fabric's
  /// leaves and falling back to round-robin otherwise. Empty (the default)
  /// keeps cost_model exactly as configured; garbage is rejected with a
  /// logged warning and the configured model stands, so a bad MPIM_TOPO
  /// degrades to the tree default instead of crashing the run.
  std::string fabric;
  CollAlgos coll{};
  /// Receiver-side per-message software overhead (seconds).
  double recv_overhead_s = 2.0e-7;
  /// Virtual cost charged to the sender per monitoring record made while
  /// at least one session is active; reproduces the paper's Fig. 4
  /// "monitoring on vs off" contrast (< 5 us in the worst case there).
  double monitor_event_cost_s = 4.0e-8;
  /// Virtual seconds per floating-point operation (Ctx::compute_flops).
  double flop_time_s = 5.0e-10;  // ~2 GFlop/s per core
  /// Optional OS-noise model: every send additionally costs a uniform
  /// 0..os_noise_s drawn from a per-rank deterministic stream seeded with
  /// (noise_seed, rank, run number). Default off: fully deterministic
  /// clocks. The Fig. 4 overhead experiment turns it on so its Welch
  /// confidence intervals have real spread to work against.
  double os_noise_s = 0.0;
  unsigned long noise_seed = 0;
  /// NIC contention model. When enabled, every inter-node message reserves
  /// busy time on the sending node's tx port and the receiving node's rx
  /// port (at the inter-node link bandwidth), so concurrent flows through
  /// one NIC serialize -- the effect that makes rank reordering pay off in
  /// the paper's Figures 5-7. To keep results deterministic, inter-node
  /// sends are globally ordered by (virtual clock, rank): a sender
  /// proceeds only when no other live, unblocked rank could still issue an
  /// earlier send (conservative min-clock gate). Off by default: without
  /// it the engine is embarrassingly parallel and clocks depend only on
  /// per-message costs.
  bool nic_contention = false;
  /// Ratio of the NIC port's wire rate to the single-flow effective
  /// bandwidth of the cost model (an Omni-Path port moves ~12.5 GB/s while
  /// one flow sustains ~6 GB/s end to end). Port busy periods are
  /// bytes / (beta * this); 1.0 means the port is no faster than a flow.
  double nic_port_beta_scale = 1.0;
  bool enable_nic_counters = true;
  /// Wall-clock watchdog: if every live rank stays blocked this long with
  /// no delivery progress, declare a deadlock in the simulated program.
  /// The effective timeout is scaled with the world size (big worlds make
  /// slower wall-clock progress on an oversubscribed host) and can be
  /// overridden with the MPIM_WATCHDOG_S environment variable.
  double watchdog_wall_timeout_s = 20.0;
  /// Rank execution backend (see SchedMode). Overridable per run with the
  /// strict-parsed MPIM_SCHED=threads|fibers environment variable; invalid
  /// values are rejected with a logged warning and this field stands.
  /// Threads remain the default until fiber parity is proven on a
  /// workload-by-workload basis; every suite workload is already
  /// bit-identical across the two (tests/sched_test.cpp).
  SchedMode sched = SchedMode::threads;
  /// Usable stack bytes per rank fiber (fiber mode only; rounded up to
  /// whole pages, with a guard page below). mmap keeps untouched pages
  /// off the RSS, so 4096 ranks cost ~1 GiB of address space, not memory.
  std::size_t fiber_stack_bytes = 256 * 1024;
  /// Optional deterministic fault plan (src/fault/fault_plan.h). When set,
  /// the engine consults it on every send and at every operation boundary:
  /// link jitter/drops/degradation shape message timing, rank crashes
  /// terminate rank threads at their virtual crash time, and peers blocked
  /// on a dead rank fail with RankFailedError instead of deadlocking.
  std::shared_ptr<fault::FaultPlan> fault_plan = nullptr;
};

class Ctx;
class FiberSched;

class Engine {
 public:
  explicit Engine(EngineConfig cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int world_size() const { return static_cast<int>(cfg_.placement.size()); }
  const EngineConfig& config() const { return cfg_; }
  const net::CostModel& cost_model() const { return cfg_.cost_model; }
  const topo::Topology& topology() const {
    return cfg_.cost_model.topology();
  }
  const topo::Fabric& fabric() const { return cfg_.cost_model.fabric(); }
  net::NicCounters& nic() { return nic_; }
  Comm world_comm() const { return world_comm_; }

  /// Host-side telemetry (metrics + spans). Disabled by default; enabling
  /// it never charges virtual time, so simulated clocks are unaffected.
  telemetry::Hub& telemetry() { return hub_; }
  const telemetry::Hub& telemetry() const { return hub_; }

  /// Must be installed before run(); called on sender threads (see the
  /// SendHook concurrency contract above). Installing a hook arms it.
  void set_send_hook(SendHook hook);

  /// Cheap per-packet gate in front of the hook: when disarmed, the send
  /// path skips the std::function dispatch entirely, so a tool runtime
  /// with nothing to record costs one relaxed atomic load per packet. The
  /// tool layer toggles this as recording plans appear and disappear;
  /// stale reads are benign (the hook itself returns 0 when it has no
  /// work), and a thread always observes its own arm/disarm in program
  /// order, which is what virtual-clock determinism needs.
  void set_send_hook_armed(bool armed) {
    send_hook_armed_.store(armed, std::memory_order_release);
  }

  /// Invoked whenever the engine is provably quiescent -- at the start of
  /// run(), before any rank thread exists. The tool layer uses this as the
  /// RCU grace-period boundary to reclaim retired recording plans.
  void set_quiescent_hook(std::function<void()> hook) {
    quiescent_hook_ = std::move(hook);
  }

  /// Opaque slot for the tool layer (mpit::Runtime) so user code can reach
  /// the tool stack from inside rank threads without global state.
  void set_tool_runtime(void* runtime) { tool_runtime_ = runtime; }
  void* tool_runtime() const { return tool_runtime_; }

  /// Called on a rank's own thread whenever its virtual clock crosses an
  /// epoch boundary (period_s-wide grid shared by all ranks), and once more
  /// at thread exit with final_flush = true (including crash teardown, so a
  /// crashed rank's last partial epoch is still flushed). The hook must
  /// never charge virtual time: with or without it, clocks are bit
  /// identical. Install before run(); disarmed, the per-operation cost is
  /// one double compare.
  using EpochHook = std::function<void(int rank, double now_s, bool final_flush)>;
  void set_epoch_hook(EpochHook hook, double period_s) {
    epoch_hook_ = std::move(hook);
    epoch_period_s_ = epoch_hook_ && period_s > 0.0 ? period_s : 0.0;
  }
  double epoch_period_s() const { return epoch_period_s_; }

  /// Called at the start of run(), after the quiescent hook, before rank
  /// threads exist (the streaming plane re-arms per-run state here).
  void set_run_begin_hook(std::function<void()> hook) {
    run_begin_hook_ = std::move(hook);
  }
  /// Called at the end of run() after every rank thread is joined and
  /// BEFORE a recorded rank failure is rethrown -- exporters that hook
  /// here keep everything flushed up to the crash even on failed runs.
  void set_run_end_hook(std::function<void()> hook) {
    run_end_hook_ = std::move(hook);
  }

  /// Slot for the streaming aggregation plane (src/obsplane). Unlike
  /// tool objects this survives across run() calls; the engine only holds
  /// the ownership, obsplane::Plane::attach manages it.
  void set_obs_plane(std::shared_ptr<void> plane) {
    obs_plane_ = std::move(plane);
  }
  void* obs_plane() const { return obs_plane_.get(); }

  /// Happens-before observers for the critical-path profiler. Installing
  /// non-empty hooks arms a relaxed atomic gate in front of the send and
  /// receive completion paths; disarmed, each costs one atomic load.
  /// Install before run(); the hooks themselves never charge virtual time.
  void set_crit_hooks(CritHooks hooks) {
    crit_hooks_ = std::move(hooks);
    crit_armed_.store(
        static_cast<bool>(crit_hooks_.on_send) ||
            static_cast<bool>(crit_hooks_.on_recv),
        std::memory_order_release);
  }

  /// Ownership slot for the critical-path profiler, the crit analog of
  /// set_obs_plane: survives run() calls, managed by
  /// critpath::Profiler::attach.
  void set_crit_plane(std::shared_ptr<void> plane) {
    crit_plane_ = std::move(plane);
  }
  void* crit_plane() const { return crit_plane_.get(); }

  /// Per-run lifecycle for the critical-path profiler, separate from the
  /// single-slot run begin/end hooks the streaming plane owns. The begin
  /// hook fires after per-run state resets (tool objects cleared) and
  /// before rank threads exist; the end hook fires after every rank thread
  /// is joined and BEFORE the streaming plane's run-end hook, so the plane
  /// can fold finished critpath results into its findings.
  void set_crit_run_hooks(std::function<void()> begin,
                          std::function<void()> end) {
    crit_run_begin_hook_ = std::move(begin);
    crit_run_end_hook_ = std::move(end);
  }

  /// Runs `rank_main` once per rank -- on one OS thread per rank, or as
  /// cooperatively scheduled fibers of the calling thread, per the
  /// resolved SchedMode -- waits for every rank to finish, and rethrows
  /// the first exception any rank raised.
  void run(const std::function<void(Ctx&)>& rank_main);

  /// Backend the current/last run() resolved (config + MPIM_SCHED).
  SchedMode sched_mode() const { return run_sched_mode_; }

  /// Highest virtual clock reached by any rank during the last run().
  double max_virtual_time() const { return max_virtual_time_; }
  /// Per-rank final clocks of the last run().
  const std::vector<double>& final_clocks() const { return final_clocks_; }

  /// Error-handling mode of a communicator (default ErrMode::fatal).
  /// Collective by convention: every member should set the same mode.
  void set_errmode(const Comm& comm, ErrMode mode);
  ErrMode errmode(const Comm& comm) const;

  /// Rank-failure observation (FaultPlan crashes). Valid during and after
  /// run(); cleared when the next run starts.
  bool rank_dead(int world_rank) const;
  /// Virtual clock at which the rank crashed (meaningless unless dead).
  double dead_time(int world_rank) const;
  /// World ranks that crashed during the last/current run, ascending.
  std::vector<int> dead_ranks() const;

  /// The watchdog timeout actually used: MPIM_WATCHDOG_S when set in the
  /// environment (invalid values are rejected with a logged warning), else
  /// watchdog_wall_timeout_s scaled by world size.
  double effective_watchdog_s() const;

  /// ULFM-style revocation (see minimpi/ft.h). Marks the communicator
  /// unusable engine-wide: member ranks blocked in or entering non-tool
  /// operations on it raise CommRevokedError (honoring the communicator's
  /// errmode). Tool-kind traffic is exempt so the monitoring plane and the
  /// recovery protocols (shrink/agree) keep working on a revoked comm.
  /// Revocation observation is wall-clock racy by nature; clock
  /// determinism on a revoked communicator is deliberately given up (the
  /// escape hatch trades reproducibility for liveness) and resumes on the
  /// shrunk successor. State is cleared when the next run() starts.
  void revoke_comm(const Comm& comm);
  bool comm_revoked(const Comm& comm) const;

  /// Records `err` as the run's failure, tears every rank down and throws
  /// AbortError on the calling thread (run() rethrows `err`). The
  /// fatal-errmode failure path.
  [[noreturn]] void fail_run(std::exception_ptr err);

  /// Deterministic communicator interning: all ranks deriving a child
  /// communicator compute the same key and receive the same impl.
  Comm intern_comm(const std::string& key, std::vector<int> world_group);

  /// Interning for tool-layer shared state (e.g. RMA windows): the first
  /// rank to present `key` runs `factory`, everyone else gets the same
  /// object. The registry is cleared at the start of each run().
  std::shared_ptr<void> get_or_create_tool_object(
      const std::string& key,
      const std::function<std::shared_ptr<void>()>& factory);

 private:
  friend class Ctx;

  struct InFlight {
    PktInfo info;
    double arrival_s = 0.0;
    std::unique_ptr<std::byte[]> payload;  ///< null for timing-only messages
  };

  struct RankState {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<InFlight> inbox;
    std::uint64_t inbox_version = 0;  ///< bumped on every push
  };

  RankState& rank_state(int world_rank) {
    return *ranks_[static_cast<std::size_t>(world_rank)];
  }

 public:
  /// What a rank is blocked in, for the structured deadlock report. Kept in
  /// a table guarded by its own mutex (never held while sleeping) so any
  /// rank can snapshot all peers without lock-ordering hazards.
  struct PendingOp {
    enum class What : std::uint8_t { none, recv, exited, crashed };
    What what = What::none;
    int src_world = kAnySource;
    int tag = 0;
    CommKind kind = CommKind::p2p;
    int context_id = -1;
    double clock_s = 0.0;
  };
  void set_pending(int rank, const PendingOp& op);
  void clear_pending(int rank, PendingOp::What terminal = PendingOp::What::none);
  /// Multi-line report naming every rank, its pending operation and its
  /// virtual clock; `reporter` is the rank whose watchdog fired.
  std::string deadlock_report(int reporter) const;

 private:
  friend class Ctx;

  void deliver(InFlight msg);
  void record_error(std::exception_ptr err);
  void abort_all();
  /// Per-rank prologue/workload/epilogue shared by both backends: runs on
  /// the rank's own thread in thread mode, inside the rank's fiber in
  /// fiber mode.
  void rank_body(int r, const std::function<void(Ctx&)>& rank_main);
  void run_threads(const std::function<void(Ctx&)>& rank_main);
  void run_fibers(const std::function<void(Ctx&)>& rank_main);
  /// cfg_.sched unless a valid MPIM_SCHED overrides it (strict-parsed;
  /// garbage is rejected with a logged warning).
  SchedMode resolve_sched_mode() const;
  /// Marks a rank dead at virtual time `when` and wakes every blocked rank
  /// (the failure notification broadcast).
  void mark_dead(int world_rank, double when_s);

  // --- deterministic NIC-contention scheduler (cfg_.nic_contention) ------
  struct Sched {
    // `pending` marks a blocked rank that already has an unexamined
    // delivery: it may wake and send as early as that delivery's arrival,
    // so it re-enters the min-clock computation with that bound until its
    // thread either matches (-> running) or rejects the message
    // (-> blocked again).
    enum class St : std::uint8_t { running, gate, blocked, pending, done };
    struct Entry {
      double clock = 0.0;  ///< lower bound of the rank's next send time
      St st = St::running;
    };
    std::mutex mx;
    std::vector<Entry> entries;
    std::vector<std::unique_ptr<std::condition_variable>> cvs;
    int min_rank = -1;  ///< arg-min (clock, rank) over running/gate entries
  };

  /// Requires sched_.mx held: updates one entry, recomputes the min and
  /// wakes the new minimum if it is waiting at the gate.
  void sched_update_locked(int rank, Sched::St st, double clock);

  Sched sched_;
  /// Per-fabric-link busy horizon (virtual seconds). On a tree fabric the
  /// links are per-node tx ports [0, N) and rx ports [N, 2N), reproducing
  /// the historical NIC-port reservations bit for bit; routed fabrics
  /// reserve every trunk/global link of the route.
  std::vector<double> link_busy_;

  EngineConfig cfg_;
  telemetry::Hub hub_;
  SendHook send_hook_;
  std::atomic<bool> send_hook_armed_{false};
  std::function<void()> quiescent_hook_;
  EpochHook epoch_hook_;
  double epoch_period_s_ = 0.0;  ///< 0 disables the epoch grid
  std::function<void()> run_begin_hook_;
  std::function<void()> run_end_hook_;
  std::shared_ptr<void> obs_plane_;
  CritHooks crit_hooks_;
  std::atomic<bool> crit_armed_{false};
  std::shared_ptr<void> crit_plane_;
  std::function<void()> crit_run_begin_hook_;
  std::function<void()> crit_run_end_hook_;
  void* tool_runtime_ = nullptr;
  net::NicCounters nic_;
  Comm world_comm_;
  std::vector<std::unique_ptr<RankState>> ranks_;

  std::mutex comm_mutex_;
  std::unordered_map<std::string, Comm> comm_registry_;
  int next_context_id_ = 1;  // 0 is the world communicator

  std::mutex tool_objects_mutex_;
  std::unordered_map<std::string, std::shared_ptr<void>> tool_objects_;

  mutable std::mutex errmode_mutex_;
  std::unordered_map<int, ErrMode> errmodes_;  ///< context id -> mode

  mutable std::mutex revoke_mutex_;
  std::unordered_set<int> revoked_;      ///< revoked context ids
  std::atomic<int> revoked_count_{0};    ///< fast path: 0 = nothing revoked

  mutable std::mutex fail_mutex_;
  std::vector<double> dead_at_;  ///< crash clock per rank; < 0 when alive
  std::atomic<int> dead_count_{0};

  mutable std::mutex pending_mutex_;
  std::vector<PendingOp> pending_;

  double watchdog_s_ = 20.0;  ///< resolved once per run()

  std::atomic<bool> abort_{false};
  std::atomic<int> blocked_{0};
  std::atomic<int> alive_{0};
  std::atomic<std::uint64_t> deliveries_{0};

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  double max_virtual_time_ = 0.0;
  std::vector<double> final_clocks_;
  std::uint64_t run_count_ = 0;

  SchedMode run_sched_mode_ = SchedMode::threads;
  /// Non-null exactly while a fiber-mode run() is inside the scheduler;
  /// wake paths (deliver, crash/revoke broadcast, NIC-gate hand-off,
  /// abort) consult it instead of the condition variables.
  std::unique_ptr<FiberSched> fiber_;
  /// Per-rank live Ctx registry for the scheduler-owned current-context
  /// pointer: the fiber dispatcher repoints the executing-context slot
  /// from it at every switch (thread mode writes each slot from the
  /// owning rank thread only).
  std::vector<Ctx*> run_ctx_;
};

/// Thrown inside rank threads when another rank failed and the run is being
/// torn down; run() reports the original error instead.
class AbortError : public Error {
 public:
  AbortError() : Error("engine run aborted") {}
};

/// Internal control-flow exception: a FaultPlan crash terminates the rank
/// thread without aborting the run. Deliberately not derived from Error so
/// application catch(Error&) handlers cannot keep a dead rank alive.
struct RankCrashExit {
  double crash_time_s = 0.0;
};

/// Per-rank execution context. Created by Engine::run for each rank thread;
/// also reachable as Ctx::current() for the MPI-style free functions.
class Ctx {
 public:
  int world_rank() const { return world_rank_; }
  double now() const { return clock_; }
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }
  Comm world() const { return engine_->world_comm(); }

  /// Advances the virtual clock (models computation or sleeping).
  void advance(double seconds);
  /// Advances the clock by flops * flop_time.
  void compute_flops(double flops);

  /// Transport used by api.cpp and the collective algorithms. `src_world`
  /// may be kAnySource. Buffers may be null for timing-only traffic.
  void send_bytes(int dst_world, const Comm& comm, int tag, CommKind kind,
                  const void* buf, std::size_t bytes);
  Status recv_bytes(int src_world, const Comm& comm, int tag, CommKind kind,
                    void* buf, std::size_t capacity);
  /// Non-blocking matching attempt; on success behaves exactly like
  /// recv_bytes. No clock charge on failure.
  bool try_recv_bytes(int src_world, const Comm& comm, int tag, CommKind kind,
                      void* buf, std::size_t capacity, Status* status);
  /// Failure-aware bounded receive: like recv_bytes but gives up after
  /// `wall_timeout_s` of host time with no match (RecvWait::timeout) and
  /// returns promptly when a specific source rank is dead
  /// (RecvWait::peer_dead, clock advanced to the crash time). Never throws
  /// typed failures itself -- callers choose between degrading and raising.
  enum class RecvWait { ok, timeout, peer_dead };
  RecvWait recv_bytes_wait(int src_world, const Comm& comm, int tag,
                           CommKind kind, void* buf, std::size_t capacity,
                           Status* status, double wall_timeout_s);
  /// Non-consuming, non-blocking probe.
  bool iprobe_bytes(int src_world, const Comm& comm, int tag, CommKind kind,
                    Status* status);

  /// One-sided transfer: charges the calling rank the modeled transfer
  /// time, reports the traffic to the monitoring hook attributed to
  /// `from_world` (for a get, the target transmits), and feeds the NIC
  /// counters. No mailbox delivery: RMA moves data via shared memory.
  void rma_transfer(int from_world, int to_world, const Comm& comm,
                    std::size_t bytes);

  // --- ULFM-style failure acknowledgement (see minimpi/ft.h) -------------
  /// Snapshots the engine's currently-detected failures among `comm`'s
  /// members into this rank's acked set; returns how many members are now
  /// acked. Deterministic when called after an operation that observed the
  /// failure (a recv that raised RankFailedError, comm_shrink, comm_agree):
  /// the observing operation happens-after the crash mark.
  int ack_failures(const Comm& comm);
  /// Group ranks acked as failed for `comm`, ascending.
  std::vector<int> acked_failures(const Comm& comm) const;
  /// True when world rank `world_rank` has been acked as failed for `comm`.
  bool failure_acked(const Comm& comm, int world_rank) const;
  /// Merges a group-rank failure bitmap into the acked set (comm_shrink's
  /// agreed dead set, which may run ahead of local detection).
  void ack_failure_bitmap(const Comm& comm,
                          const std::vector<std::uint8_t>& dead_by_group);
  /// Advances the clock to a dead rank's crash time, exactly as a receive
  /// that observed the failure would: failure-aware paths that skip a dead
  /// contributor still complete at a deterministic virtual instant.
  void observe_rank_failure(int world_rank);

  /// Collective sequence number for a communicator: identical across all
  /// member ranks because collectives execute in the same order on each.
  std::uint32_t next_coll_seq(const Comm& comm);
  /// Sequence for communicator-management epochs (split/dup).
  std::uint32_t next_mgmt_seq(const Comm& comm);

  /// The context of the calling rank thread; fails outside Engine::run.
  static Ctx& current();

 private:
  friend class Engine;
  Ctx(Engine* engine, int world_rank)
      : engine_(engine), world_rank_(world_rank) {}

  /// Predicate-checked blocking wait on this rank's inbox with watchdog.
  template <typename Pred>
  void wait_on_inbox(std::unique_lock<std::mutex>& lock, Pred&& ready);

  /// Consults the fault plan at an operation boundary: applies one-shot
  /// stalls and terminates the rank (RankCrashExit) past its crash time.
  void fault_check();

  /// Epoch-hook gate: one double compare when the clock has not crossed
  /// the next epoch boundary (or no hook is installed:
  /// next_epoch_s_ = +inf). Called at clock-advancing sites; never charges
  /// virtual time itself.
  void epoch_check() {
    if (clock_ >= next_epoch_s_) epoch_cross();
  }
  /// Slow path of epoch_check: fires the hook and re-arms the boundary.
  void epoch_cross();
  /// Raises the failure for an operation whose peer rank is dead: fatal
  /// errmode tears the run down, ret mode throws RankFailedError. `op`
  /// names the operation for the message ("recv", "send", ...).
  [[noreturn]] void raise_peer_dead(int peer_world, const Comm& comm, int tag,
                                    const char* op = "recv");
  /// Raises CommRevokedError for an operation on a revoked communicator,
  /// honoring the communicator's errmode like raise_peer_dead.
  [[noreturn]] void raise_revoked(const Comm& comm, const char* op);

  /// NIC-contention path of an inter-node transfer: waits at the min-clock
  /// gate, reserves the tx/rx ports and returns the arrival time (out
  /// param: actual transmission start >= current clock).
  double contended_transfer(int leaf_src, int leaf_dst, double tx_s,
                            double alpha_s, double* tx_start);

  bool match_and_complete(int src_world, const Comm& comm, int tag,
                          CommKind kind, void* buf, std::size_t capacity,
                          Status* status, bool consume_clock);

  Engine* engine_;
  int world_rank_;
  double clock_ = 0.0;
  /// Next epoch boundary the clock has not crossed yet; +inf when no epoch
  /// hook is installed (set up by Engine::run per rank thread).
  double next_epoch_s_ = std::numeric_limits<double>::infinity();
  Rng noise_rng_{0};
  /// Monotone per-sender packet counter backing PktInfo::send_seq. Host
  /// bookkeeping only: stamping it charges no virtual time.
  std::uint64_t send_seq_ = 0;
  std::unordered_map<int, std::uint32_t> coll_seq_;
  std::unordered_map<int, std::uint32_t> mgmt_seq_;
  /// context id -> group-rank bitmap of acked failures (rank-local state,
  /// touched only by this rank's thread).
  std::unordered_map<int, std::vector<std::uint8_t>> ft_acked_;
};

}  // namespace mpim::mpi
