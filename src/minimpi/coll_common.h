// Internal helpers shared by the collective algorithm files.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>

#include "minimpi/coll.h"
#include "support/error.h"

namespace mpim::mpi::coll::detail {

/// One collective invocation: resolves ranks, fixes the round tag, and
/// exposes group-rank send/recv in terms of the engine transport.
class Round {
 public:
  Round(Ctx& ctx, const Comm& comm, CommKind kind)
      : ctx_(ctx),
        comm_(comm),
        kind_(kind),
        tag_(coll_tag(ctx.next_coll_seq(comm))),
        rank_(comm.group_rank_of_world(ctx.world_rank())),
        size_(comm.size()) {
    check(rank_ >= 0, "collective caller is not in the communicator");
  }

  int rank() const { return rank_; }
  int size() const { return size_; }

  void send(int dst_group, const void* buf, std::size_t bytes) {
    const int dst_world = comm_.world_rank_of(dst_group);
    // Child span of the enclosing collective: the paper's below-collective
    // view — each p2p edge of the decomposition tree becomes visible.
    // Tool-kind traffic stays invisible, like everywhere else.
    telemetry::Hub& hub = ctx_.engine().telemetry();
    if (kind_ != CommKind::tool && hub.enabled()) {
      const double t0 = ctx_.now();
      ctx_.send_bytes(dst_world, comm_, tag_, kind_, buf, bytes);
      hub.span_complete(ctx_.world_rank(), "p2p.send", 'M', t0, ctx_.now(),
                        dst_world, static_cast<std::int64_t>(bytes));
    } else {
      ctx_.send_bytes(dst_world, comm_, tag_, kind_, buf, bytes);
    }
  }

  Status recv(int src_group, void* buf, std::size_t bytes) {
    return ctx_.recv_bytes(comm_.world_rank_of(src_group), comm_, tag_, kind_,
                           buf, bytes);
  }

  /// Eager sends never block, so a blocking exchange is send-then-recv.
  void sendrecv(int peer_group, const void* sendb, void* recvb,
                std::size_t bytes) {
    send(peer_group, sendb, bytes);
    recv(peer_group, recvb, bytes);
  }

 private:
  Ctx& ctx_;
  const Comm& comm_;
  CommKind kind_;
  int tag_;
  int rank_;
  int size_;
};

/// Null-tolerant block arithmetic: timing-only collectives pass null
/// buffers and skip all data movement while keeping the message sizes.
inline std::byte* block_at(void* base, std::size_t block,
                           std::size_t block_bytes) {
  return base == nullptr
             ? nullptr
             : static_cast<std::byte*>(base) + block * block_bytes;
}

inline const std::byte* block_at(const void* base, std::size_t block,
                                 std::size_t block_bytes) {
  return base == nullptr
             ? nullptr
             : static_cast<const std::byte*>(base) + block * block_bytes;
}

inline void copy_block(void* dst, const void* src, std::size_t bytes) {
  if (dst != nullptr && src != nullptr && bytes > 0)
    std::memcpy(dst, src, bytes);
}

/// Scratch buffer allocated only when the collective carries real data.
inline std::unique_ptr<std::byte[]> scratch_if(bool needed,
                                               std::size_t bytes) {
  return (needed && bytes > 0) ? std::make_unique<std::byte[]>(bytes)
                               : nullptr;
}

}  // namespace mpim::mpi::coll::detail
