// Elementary MPI-like types: datatypes, reduction operators, matching
// wildcards and message status.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace mpim::mpi {

/// Subset of the MPI predefined datatypes. Only the element size matters to
/// the transport; reductions additionally dispatch on the arithmetic type.
enum class Type : std::uint8_t {
  Byte,
  Char,
  Int,
  Unsigned,
  Long,
  UnsignedLong,
  Float,
  Double,
};

std::size_t type_size(Type t);
std::string type_name(Type t);

/// Reduction operators (MPI_SUM, MPI_MAX, ...).
enum class Op : std::uint8_t { Sum, Prod, Max, Min, Land, Lor, Band, Bor };

std::string op_name(Op op);

/// inout[i] = op(inout[i], in[i]) for `count` elements of type `t`.
/// Logical/bitwise ops are rejected for floating-point types.
void reduce_in_place(void* inout, const void* in, std::size_t count, Type t,
                     Op op);

/// How a message entered the transport. This is what the low-level
/// monitoring component ("pml_monitoring") tags every packet with and what
/// the MPI_M_* kind filters select on.
enum class CommKind : std::uint8_t {
  p2p,   ///< user-issued point-to-point traffic
  coll,  ///< point-to-point messages a collective decomposed into
  osc,   ///< one-sided (RMA) traffic
  tool,  ///< traffic of the tool stack itself: never monitored
};

std::string comm_kind_name(CommKind k);

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
/// Largest tag available to applications; higher values are reserved for
/// the collective and tool tag spaces.
inline constexpr int kMaxUserTag = (1 << 28) - 1;

struct Status {
  int source = kAnySource;  ///< rank in the receive communicator
  int tag = kAnyTag;
  std::size_t bytes = 0;  ///< actual payload size

  std::size_t count(Type t) const { return bytes / type_size(t); }
};

}  // namespace mpim::mpi
