// Reduce algorithms. The paper's Fig. 5a optimizes a *binary tree* reduce
// (each process receives from up to two children and forwards one partial
// result to its parent), which is the default here.
#include "minimpi/coll_common.h"

namespace mpim::mpi::coll {

namespace {

struct ReduceBuffers {
  std::unique_ptr<std::byte[]> acc;
  std::unique_ptr<std::byte[]> tmp;
};

// Combine a received partial result into the accumulator, tolerating
// timing-only (null-payload) traffic.
void combine(std::byte* acc, const std::byte* tmp, std::size_t count,
             Type type, Op op) {
  if (acc != nullptr && tmp != nullptr && count > 0)
    reduce_in_place(acc, tmp, count, type, op);
}

// Complete binary tree on virtual ranks: children of v are 2v+1 and 2v+2.
void reduce_binary_tree(detail::Round& r, ReduceBuffers& b, std::size_t count,
                        Type type, Op op, int root, std::size_t bytes) {
  const int size = r.size();
  const int vrank = (r.rank() - root + size) % size;
  auto abs = [&](int v) { return (v + root) % size; };

  for (int child = 2 * vrank + 1; child <= 2 * vrank + 2; ++child) {
    if (child >= size) break;
    r.recv(abs(child), b.tmp.get(), bytes);
    combine(b.acc.get(), b.tmp.get(), count, type, op);
  }
  if (vrank != 0) r.send(abs((vrank - 1) / 2), b.acc.get(), bytes);
}

// Binomial fan-in (the MPICH default for commutative ops).
void reduce_binomial(detail::Round& r, ReduceBuffers& b, std::size_t count,
                     Type type, Op op, int root, std::size_t bytes) {
  const int size = r.size();
  const int vrank = (r.rank() - root + size) % size;
  auto abs = [&](int v) { return (v + root) % size; };

  int mask = 1;
  while (mask < size) {
    if (vrank & mask) {
      r.send(abs(vrank - mask), b.acc.get(), bytes);
      break;
    }
    if (vrank + mask < size) {
      r.recv(abs(vrank + mask), b.tmp.get(), bytes);
      combine(b.acc.get(), b.tmp.get(), count, type, op);
    }
    mask <<= 1;
  }
}

void reduce_linear(detail::Round& r, ReduceBuffers& b, std::size_t count,
                   Type type, Op op, int root, std::size_t bytes) {
  if (r.rank() == root) {
    for (int src = 0; src < r.size(); ++src) {
      if (src == root) continue;
      r.recv(src, b.tmp.get(), bytes);
      combine(b.acc.get(), b.tmp.get(), count, type, op);
    }
  } else {
    r.send(root, b.acc.get(), bytes);
  }
}

}  // namespace

void reduce(Ctx& ctx, const void* sendbuf, void* recvbuf, std::size_t count,
            Type type, Op op, int root, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  check(root >= 0 && root < r.size(), "reduce root out of range");
  const std::size_t bytes = count * type_size(type);

  ReduceBuffers b;
  b.acc = detail::scratch_if(sendbuf != nullptr, bytes);
  b.tmp = detail::scratch_if(sendbuf != nullptr, bytes);
  detail::copy_block(b.acc.get(), sendbuf, bytes);
  // Charge the local combining work (count ops per received partial result
  // is already implicit in virtual transfer times; we charge only the own
  // arithmetic once to keep the model simple and deterministic).
  ctx.compute_flops(static_cast<double>(count));

  if (r.size() > 1) {
    switch (ctx.engine().config().coll.reduce) {
      case ReduceAlgo::binary_tree:
        reduce_binary_tree(r, b, count, type, op, root, bytes);
        break;
      case ReduceAlgo::binomial:
        reduce_binomial(r, b, count, type, op, root, bytes);
        break;
      case ReduceAlgo::linear:
        reduce_linear(r, b, count, type, op, root, bytes);
        break;
    }
  }
  if (r.rank() == root) detail::copy_block(recvbuf, b.acc.get(), bytes);
}

void allreduce(Ctx& ctx, const void* sendbuf, void* recvbuf,
               std::size_t count, Type type, Op op, const Comm& comm,
               CommKind kind) {
  const std::size_t bytes = count * type_size(type);
  detail::Round r(ctx, comm, kind);
  const int size = r.size();
  const int rank = r.rank();

  auto acc = detail::scratch_if(sendbuf != nullptr, bytes);
  auto tmp = detail::scratch_if(sendbuf != nullptr, bytes);
  detail::copy_block(acc.get(), sendbuf, bytes);
  ctx.compute_flops(static_cast<double>(count));

  if (size > 1 &&
      ctx.engine().config().coll.allreduce ==
          AllreduceAlgo::recursive_doubling) {
    // Rabenseifner-style fold of the ranks that exceed the largest power of
    // two, then recursive doubling among the survivors, then unfold.
    int pof2 = 1;
    while (pof2 * 2 <= size) pof2 *= 2;
    const int rem = size - pof2;

    int newrank;
    if (rank < 2 * rem) {
      if (rank % 2 == 1) {  // odd ranks hand their data over and wait
        r.send(rank - 1, acc.get(), bytes);
        newrank = -1;
      } else {
        r.recv(rank + 1, tmp.get(), bytes);
        combine(acc.get(), tmp.get(), count, type, op);
        newrank = rank / 2;
      }
    } else {
      newrank = rank - rem;
    }

    if (newrank >= 0) {
      for (int mask = 1; mask < pof2; mask <<= 1) {
        const int peer_new = newrank ^ mask;
        const int peer =
            (peer_new < rem) ? peer_new * 2 : peer_new + rem;
        r.sendrecv(peer, acc.get(), tmp.get(), bytes);
        combine(acc.get(), tmp.get(), count, type, op);
      }
    }

    if (rank < 2 * rem) {
      if (rank % 2 == 1)
        r.recv(rank - 1, acc.get(), bytes);
      else
        r.send(rank + 1, acc.get(), bytes);
    }
    detail::copy_block(recvbuf, acc.get(), bytes);
    return;
  }

  // reduce + bcast fallback (also used for size == 1).
  // Note: uses two nested collective rounds on the same communicator.
  reduce(ctx, sendbuf, recvbuf, count, type, op, 0, comm, kind);
  bcast(ctx, recvbuf, count, type, 0, comm, kind);
}

}  // namespace mpim::mpi::coll
