// Barrier algorithms: dissemination (default) and binomial tree.
#include "minimpi/coll_common.h"

namespace mpim::mpi::coll {

namespace {

void barrier_dissemination(detail::Round& r) {
  const int size = r.size();
  for (int step = 1; step < size; step <<= 1) {
    const int dst = (r.rank() + step) % size;
    const int src = (r.rank() - step + size) % size;
    r.send(dst, nullptr, 0);
    r.recv(src, nullptr, 0);
  }
}

// Binomial fan-in to rank 0 followed by binomial fan-out.
void barrier_tree(detail::Round& r) {
  const int size = r.size();
  const int rank = r.rank();
  int mask = 1;
  while (mask < size) {
    if (rank & mask) {
      r.send(rank - mask, nullptr, 0);
      break;
    }
    if (rank + mask < size) r.recv(rank + mask, nullptr, 0);
    mask <<= 1;
  }
  // Fan-out: mirror of the fan-in.
  if (rank != 0) {
    // Find the bit we sent on; our parent releases us.
    int parent_mask = 1;
    while (!(rank & parent_mask)) parent_mask <<= 1;
    r.recv(rank - parent_mask, nullptr, 0);
    mask = parent_mask >> 1;
  } else {
    mask = 1;
    while (mask < size) mask <<= 1;
    mask >>= 1;
  }
  for (; mask > 0; mask >>= 1) {
    if ((rank & (mask - 1)) == 0 && !(rank & mask) && rank + mask < size)
      r.send(rank + mask, nullptr, 0);
  }
}

}  // namespace

void barrier(Ctx& ctx, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  if (r.size() == 1) return;
  switch (ctx.engine().config().coll.barrier) {
    case BarrierAlgo::dissemination:
      barrier_dissemination(r);
      return;
    case BarrierAlgo::tree:
      barrier_tree(r);
      return;
  }
  fail("unknown barrier algorithm");
}

}  // namespace mpim::mpi::coll
