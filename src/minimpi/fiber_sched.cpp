#include "minimpi/fiber_sched.h"

#include <sys/mman.h>
#include <unistd.h>

#include <thread>

#include "support/error.h"

// Sanitizer fiber annotations: ASan needs to know about stack switches so
// its fake-stack bookkeeping follows the fibers; TSan models each fiber as
// its own logical thread so the single-OS-thread schedule stays race-free
// in its eyes.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPIM_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define MPIM_FIBER_TSAN 1
#endif
#endif
#if !defined(MPIM_FIBER_ASAN) && defined(__SANITIZE_ADDRESS__)
#define MPIM_FIBER_ASAN 1
#endif
#if !defined(MPIM_FIBER_TSAN) && defined(__SANITIZE_THREAD__)
#define MPIM_FIBER_TSAN 1
#endif
#if defined(MPIM_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(MPIM_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

// Guard regions without VMA splits (Linux 6.13+). The value is ABI-stable;
// define it locally so pre-6.13 glibc headers still compile (the runtime
// madvise simply fails there and we fall back to mprotect guards).
#ifndef MADV_GUARD_INSTALL
#define MADV_GUARD_INSTALL 102
#endif

namespace mpim::mpi {

namespace {
std::size_t page_size() {
  static const std::size_t p =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return p;
}
}  // namespace

FiberSched::FiberSched(int nranks, std::size_t stack_bytes,
                       std::function<void(int)> on_resume)
    : n_(nranks), on_resume_(std::move(on_resume)) {
  check(nranks > 0, "fiber scheduler needs at least one rank");
  const std::size_t page = page_size();
  // Round the stack up to whole pages and keep a guard page at the low end
  // of every stack (stacks grow down): a rank that overruns its fiber
  // stack faults loudly instead of silently corrupting a neighbor. All
  // stacks live in ONE lazy anonymous mapping -- [guard|stack] x n -- so
  // the address space cost is virtual, not RSS, and (with madvise guards;
  // see slab_base_ in the header) the VMA cost is constant, not O(n).
  stack_bytes_ = ((stack_bytes + page - 1) / page) * page;
  if (stack_bytes_ < 4 * page) stack_bytes_ = 4 * page;
  const std::size_t stride = stack_bytes_ + page;
  slab_bytes_ = stride * static_cast<std::size_t>(n_);
  void* base = ::mmap(nullptr, slab_bytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  check(base != MAP_FAILED, "fiber stack slab mmap failed");
  slab_base_ = static_cast<char*>(base);

  // Probe MADV_GUARD_INSTALL once on the first guard page; on kernels
  // without it (< 6.13) every guard degrades to a PROT_NONE mapping split.
  bool madvise_guards =
      ::madvise(slab_base_, page, MADV_GUARD_INSTALL) == 0;

  fibers_.reserve(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    auto f = std::make_unique<Fiber>();
    char* guard = slab_base_ + stride * static_cast<std::size_t>(r);
    if (madvise_guards) {
      if (r > 0)  // page 0's guard was installed by the probe
        check(::madvise(guard, page, MADV_GUARD_INSTALL) == 0,
              "fiber guard madvise failed");
    } else {
      check(::mprotect(guard, page, PROT_NONE) == 0,
            "fiber guard mprotect failed");
    }
    f->stack_lo = guard + page;
    f->stack_bytes = stack_bytes_;
    fibers_.push_back(std::move(f));
  }
#if defined(MPIM_FIBER_TSAN)
  main_tsan_fiber_ = __tsan_get_current_fiber();
  for (auto& f : fibers_) f->tsan_fiber = __tsan_create_fiber(0);
#endif
}

FiberSched::~FiberSched() {
#if defined(MPIM_FIBER_TSAN)
  for (auto& f : fibers_)
    if (f->tsan_fiber != nullptr) __tsan_destroy_fiber(f->tsan_fiber);
#endif
  if (slab_base_ != nullptr) ::munmap(slab_base_, slab_bytes_);
}

void FiberSched::trampoline(unsigned int self_hi, unsigned int self_lo) {
  auto* self = reinterpret_cast<FiberSched*>(
      (static_cast<std::uintptr_t>(self_hi) << 32) |
      static_cast<std::uintptr_t>(self_lo));
  self->fiber_main();
}

void FiberSched::fiber_main() {
  // First entry into this fiber: complete the sanitizer switch the
  // scheduler started, learning the scheduler's own stack bounds for the
  // way back.
#if defined(MPIM_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(nullptr, &main_stack_lo_,
                                  &main_stack_bytes_);
#endif
  const int rank = running_;
  body_(rank);
  Fiber& f = *fibers_[static_cast<std::size_t>(rank)];
  f.st = St::done;
  ++done_;
  switch_to_main(/*dying=*/true);
  check(false, "dead fiber resumed");  // unreachable
}

void FiberSched::switch_into(int rank) {
  Fiber& f = *fibers_[static_cast<std::size_t>(rank)];
  f.st = St::running;
  running_ = rank;
  if (on_resume_) on_resume_(rank);
#if defined(MPIM_FIBER_ASAN)
  __sanitizer_start_switch_fiber(&main_fake_stack_, f.stack_lo,
                                 f.stack_bytes);
#endif
#if defined(MPIM_FIBER_TSAN)
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
  swapcontext(&main_uc_, &f.uc);
  // A fiber switched back (yield or death); we are the scheduler again.
#if defined(MPIM_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(main_fake_stack_, nullptr, nullptr);
#endif
  running_ = -1;
  if (on_resume_) on_resume_(-1);
}

void FiberSched::switch_to_main([[maybe_unused]] bool dying) {
  Fiber& f = *fibers_[static_cast<std::size_t>(running_)];
#if defined(MPIM_FIBER_ASAN)
  // A dying fiber's fake stack is released instead of saved.
  __sanitizer_start_switch_fiber(dying ? nullptr : &f.fake_stack,
                                 main_stack_lo_, main_stack_bytes_);
#endif
#if defined(MPIM_FIBER_TSAN)
  __tsan_switch_to_fiber(main_tsan_fiber_, 0);
#endif
  swapcontext(&f.uc, &main_uc_);
  // Resumed by the scheduler.
#if defined(MPIM_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(f.fake_stack, nullptr, nullptr);
#endif
}

void FiberSched::make_ready(Fiber& f, int rank) {
  if (f.st == St::timed) --timed_count_;
  f.st = St::ready;
  ready_.emplace(f.key, rank);
}

void FiberSched::wake(int rank) {
  Fiber& f = *fibers_[static_cast<std::size_t>(rank)];
  if (f.st == St::blocked || f.st == St::timed) make_ready(f, rank);
}

void FiberSched::wake_all() {
  for (int r = 0; r < n_; ++r) wake(r);
}

void FiberSched::block(double clock_s) {
  Fiber& f = *fibers_[static_cast<std::size_t>(running_)];
  f.st = St::blocked;
  f.key = clock_s;
  switch_to_main(/*dying=*/false);
}

void FiberSched::block_until(double clock_s,
                             std::chrono::steady_clock::time_point deadline) {
  Fiber& f = *fibers_[static_cast<std::size_t>(running_)];
  f.st = St::timed;
  f.key = clock_s;
  f.deadline = deadline;
  ++f.gen;
  ++timed_count_;
  timed_.push(TimedEntry{deadline, running_, f.gen});
  switch_to_main(/*dying=*/false);
}

void FiberSched::promote_expired(std::chrono::steady_clock::time_point now) {
  while (!timed_.empty()) {
    const TimedEntry& top = timed_.top();
    Fiber& f = *fibers_[static_cast<std::size_t>(top.rank)];
    const bool stale = f.st != St::timed || f.gen != top.gen;
    if (!stale && top.deadline > now) break;
    if (!stale) make_ready(f, top.rank);
    timed_.pop();
  }
}

std::chrono::steady_clock::time_point FiberSched::earliest_deadline() {
  while (!timed_.empty()) {
    const TimedEntry& top = timed_.top();
    const Fiber& f = *fibers_[static_cast<std::size_t>(top.rank)];
    if (f.st == St::timed && f.gen == top.gen) return top.deadline;
    timed_.pop();
  }
  check(false, "fiber scheduler lost a timed waiter");
  return {};
}

int FiberSched::first_blocked() const {
  for (int r = 0; r < n_; ++r)
    if (fibers_[static_cast<std::size_t>(r)]->st == St::blocked) return r;
  return 0;
}

void FiberSched::run(const std::function<void(int)>& body,
                     const std::function<void(int)>& on_stall) {
  body_ = body;
  done_ = 0;
  const auto self_bits = reinterpret_cast<std::uintptr_t>(this);
  const auto self_hi = static_cast<unsigned int>(self_bits >> 32);
  const auto self_lo = static_cast<unsigned int>(self_bits & 0xffffffffu);
  for (int r = 0; r < n_; ++r) {
    Fiber& f = *fibers_[static_cast<std::size_t>(r)];
    check(getcontext(&f.uc) == 0, "getcontext failed");
    f.uc.uc_stack.ss_sp = f.stack_lo;
    f.uc.uc_stack.ss_size = f.stack_bytes;
    f.uc.uc_link = nullptr;  // fibers exit through switch_to_main, never fall off
    makecontext(&f.uc, reinterpret_cast<void (*)()>(&FiberSched::trampoline),
                2, self_hi, self_lo);
    f.st = St::ready;
    f.key = 0.0;
    ready_.emplace(0.0, r);
  }

  while (done_ < n_) {
    if (timed_count_ > 0)
      promote_expired(std::chrono::steady_clock::now());
    if (ready_.empty()) {
      if (timed_count_ > 0) {
        // Only wall time can unblock anyone: sleep to the earliest timed
        // deadline (a fiber's bounded receive), then hand it the core.
        std::this_thread::sleep_until(earliest_deadline());
        promote_expired(std::chrono::steady_clock::now());
        continue;
      }
      // No fiber is ready, none is waiting on wall time, and not all are
      // done: the simulated program is deadlocked (or the run is being
      // torn down). The engine records the failure, then every blocked
      // fiber is woken to observe it and unwind.
      on_stall(first_blocked());
      wake_all();
      check(!ready_.empty(), "fiber scheduler stalled with no blocked fibers");
      continue;
    }
    const int rank = ready_.top().second;
    ready_.pop();
    if (fibers_[static_cast<std::size_t>(rank)]->st != St::ready)
      continue;  // defensive: duplicate/stale entry
    switch_into(rank);
  }
}

}  // namespace mpim::mpi
