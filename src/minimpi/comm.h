// Communicators.
//
// A communicator is an immutable, shared description of an ordered group of
// world ranks plus a context id that isolates its tag space. The calling
// rank's position inside the communicator is resolved through the engine
// context (see api.h) so Comm handles are cheap values that all ranks share.
#pragma once

#include <memory>
#include <vector>

#include "support/error.h"

namespace mpim::mpi {

class Engine;

namespace detail {
struct CommImpl {
  int context_id = -1;
  std::vector<int> group;           ///< group rank -> world rank
  std::vector<int> world_to_group;  ///< world rank -> group rank or -1

  CommImpl(int ctx_id, std::vector<int> members, int world_size);
};
}  // namespace detail

class Comm {
 public:
  Comm() = default;  ///< null handle (like MPI_COMM_NULL)

  bool is_null() const { return impl_ == nullptr; }
  int context_id() const { return impl().context_id; }
  int size() const { return static_cast<int>(impl().group.size()); }

  int world_rank_of(int group_rank) const {
    check(group_rank >= 0 && group_rank < size(), "group rank out of range");
    return impl().group[static_cast<std::size_t>(group_rank)];
  }

  /// Group rank of a world rank, or -1 when it is not a member.
  int group_rank_of_world(int world_rank) const {
    const auto& map = impl().world_to_group;
    if (world_rank < 0 || world_rank >= static_cast<int>(map.size()))
      return -1;
    return map[static_cast<std::size_t>(world_rank)];
  }

  bool contains_world(int world_rank) const {
    return group_rank_of_world(world_rank) >= 0;
  }

  const std::vector<int>& group() const { return impl().group; }

  /// Dense world rank -> group rank table, sized to the world and holding
  /// -1 for non-members. The storage lives as long as any Comm handle to
  /// this communicator: the monitoring fast path caches `.data()` in its
  /// recording plans (with the Comm retained alongside) so per-packet
  /// translation is one indexed load.
  const std::vector<int>& world_to_group_table() const {
    return impl().world_to_group;
  }

  bool operator==(const Comm& other) const {
    return impl_ == other.impl_ ||
           (impl_ && other.impl_ &&
            impl_->context_id == other.impl_->context_id);
  }

 private:
  friend class Engine;
  explicit Comm(std::shared_ptr<const detail::CommImpl> impl)
      : impl_(std::move(impl)) {}

  const detail::CommImpl& impl() const {
    check(impl_ != nullptr, "null communicator used");
    return *impl_;
  }

  std::shared_ptr<const detail::CommImpl> impl_;
};

}  // namespace mpim::mpi
