#include "minimpi/types.h"

#include <algorithm>

#include "support/error.h"

namespace mpim::mpi {

std::size_t type_size(Type t) {
  switch (t) {
    case Type::Byte:
    case Type::Char:
      return 1;
    case Type::Int:
    case Type::Unsigned:
    case Type::Float:
      return 4;
    case Type::Long:
    case Type::UnsignedLong:
    case Type::Double:
      return 8;
  }
  fail("unknown datatype");
}

std::string type_name(Type t) {
  switch (t) {
    case Type::Byte: return "MPI_BYTE";
    case Type::Char: return "MPI_CHAR";
    case Type::Int: return "MPI_INT";
    case Type::Unsigned: return "MPI_UNSIGNED";
    case Type::Long: return "MPI_LONG";
    case Type::UnsignedLong: return "MPI_UNSIGNED_LONG";
    case Type::Float: return "MPI_FLOAT";
    case Type::Double: return "MPI_DOUBLE";
  }
  fail("unknown datatype");
}

std::string op_name(Op op) {
  switch (op) {
    case Op::Sum: return "MPI_SUM";
    case Op::Prod: return "MPI_PROD";
    case Op::Max: return "MPI_MAX";
    case Op::Min: return "MPI_MIN";
    case Op::Land: return "MPI_LAND";
    case Op::Lor: return "MPI_LOR";
    case Op::Band: return "MPI_BAND";
    case Op::Bor: return "MPI_BOR";
  }
  fail("unknown op");
}

std::string comm_kind_name(CommKind k) {
  switch (k) {
    case CommKind::p2p: return "p2p";
    case CommKind::coll: return "coll";
    case CommKind::osc: return "osc";
    case CommKind::tool: return "tool";
  }
  fail("unknown comm kind");
}

namespace {

template <typename T>
void apply_arith(T* inout, const T* in, std::size_t count, Op op) {
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < count; ++i) inout[i] += in[i];
      return;
    case Op::Prod:
      for (std::size_t i = 0; i < count; ++i) inout[i] *= in[i];
      return;
    case Op::Max:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::max(inout[i], in[i]);
      return;
    case Op::Min:
      for (std::size_t i = 0; i < count; ++i)
        inout[i] = std::min(inout[i], in[i]);
      return;
    default:
      break;
  }
  if constexpr (std::is_integral_v<T>) {
    switch (op) {
      case Op::Land:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = static_cast<T>(inout[i] && in[i]);
        return;
      case Op::Lor:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = static_cast<T>(inout[i] || in[i]);
        return;
      case Op::Band:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = static_cast<T>(inout[i] & in[i]);
        return;
      case Op::Bor:
        for (std::size_t i = 0; i < count; ++i)
          inout[i] = static_cast<T>(inout[i] | in[i]);
        return;
      default:
        break;
    }
  }
  fail("reduction op not supported for this datatype");
}

}  // namespace

void reduce_in_place(void* inout, const void* in, std::size_t count, Type t,
                     Op op) {
  switch (t) {
    case Type::Byte:
    case Type::Char:
      apply_arith(static_cast<unsigned char*>(inout),
                  static_cast<const unsigned char*>(in), count, op);
      return;
    case Type::Int:
      apply_arith(static_cast<int*>(inout), static_cast<const int*>(in), count,
                  op);
      return;
    case Type::Unsigned:
      apply_arith(static_cast<unsigned*>(inout),
                  static_cast<const unsigned*>(in), count, op);
      return;
    case Type::Long:
      apply_arith(static_cast<long*>(inout), static_cast<const long*>(in),
                  count, op);
      return;
    case Type::UnsignedLong:
      apply_arith(static_cast<unsigned long*>(inout),
                  static_cast<const unsigned long*>(in), count, op);
      return;
    case Type::Float:
      apply_arith(static_cast<float*>(inout), static_cast<const float*>(in),
                  count, op);
      return;
    case Type::Double:
      apply_arith(static_cast<double*>(inout), static_cast<const double*>(in),
                  count, op);
      return;
  }
  fail("unknown datatype in reduction");
}

}  // namespace mpim::mpi
