// Prefix reductions (scan / exscan) and reduce_scatter_block.
#include "minimpi/coll_common.h"

namespace mpim::mpi::coll {

namespace {

void combine(std::byte* acc, const std::byte* in, std::size_t count,
             Type type, Op op) {
  if (acc != nullptr && in != nullptr && count > 0)
    reduce_in_place(acc, in, count, type, op);
}

// Hillis-Steele-style scan: at step 2^k receive the partial prefix of
// rank - 2^k and fold it in; send own running partial to rank + 2^k.
// O(log n) rounds, each rank sends at most one message per round.
//
// Correctness needs care with non-commutative order: the partial held
// after step k covers ranks [rank - 2^{k+1} + 1, rank]; prepending the
// incoming partial (which covers the 2^k ranks just below) keeps the
// rank order. Our Op set is commutative, but the implementation still
// folds in prefix order so the structure matches the textbook algorithm.
void scan_impl(detail::Round& r, std::byte* acc, std::byte* tmp,
               std::size_t count, Type type, Op op, std::size_t bytes,
               bool exclusive, void* recvbuf) {
  const int size = r.size();
  const int rank = r.rank();

  // running = inclusive prefix over the ranks covered so far (own value
  // initially); carry = value to hand to higher ranks.
  for (int step = 1; step < size; step <<= 1) {
    const int dst = rank + step;
    const int src = rank - step;
    if (dst < size) r.send(dst, acc, bytes);
    if (src >= 0) {
      r.recv(src, tmp, bytes);
      combine(acc, tmp, count, type, op);
    }
  }

  if (!exclusive) {
    detail::copy_block(recvbuf, acc, bytes);
    return;
  }
  // Exclusive variant: rank i needs the prefix of ranks 0..i-1, i.e. the
  // inclusive prefix of rank i-1. One extra shift by one.
  if (rank + 1 < size) r.send(rank + 1, acc, bytes);
  if (rank > 0) {
    r.recv(rank - 1, tmp, bytes);
    detail::copy_block(recvbuf, tmp, bytes);
  }
  // Rank 0's recvbuf is intentionally untouched (MPI_Exscan semantics).
}

}  // namespace

void scan(Ctx& ctx, const void* sendbuf, void* recvbuf, std::size_t count,
          Type type, Op op, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  const std::size_t bytes = count * type_size(type);
  auto acc = detail::scratch_if(sendbuf != nullptr, bytes);
  auto tmp = detail::scratch_if(sendbuf != nullptr, bytes);
  detail::copy_block(acc.get(), sendbuf, bytes);
  ctx.compute_flops(static_cast<double>(count));
  if (r.size() == 1) {
    detail::copy_block(recvbuf, acc.get(), bytes);
    return;
  }
  scan_impl(r, acc.get(), tmp.get(), count, type, op, bytes,
            /*exclusive=*/false, recvbuf);
}

void exscan(Ctx& ctx, const void* sendbuf, void* recvbuf, std::size_t count,
            Type type, Op op, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  const std::size_t bytes = count * type_size(type);
  auto acc = detail::scratch_if(sendbuf != nullptr, bytes);
  auto tmp = detail::scratch_if(sendbuf != nullptr, bytes);
  detail::copy_block(acc.get(), sendbuf, bytes);
  ctx.compute_flops(static_cast<double>(count));
  if (r.size() == 1) return;  // rank 0 untouched
  scan_impl(r, acc.get(), tmp.get(), count, type, op, bytes,
            /*exclusive=*/true, recvbuf);
}

void reduce_scatter_block(Ctx& ctx, const void* sendbuf, void* recvbuf,
                          std::size_t count, Type type, Op op,
                          const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  const int size = r.size();
  const int rank = r.rank();
  const std::size_t block_bytes = count * type_size(type);
  if (size == 1) {
    detail::copy_block(recvbuf, sendbuf, block_bytes);
    return;
  }

  const bool pof2 = (size & (size - 1)) == 0;
  if (pof2) {
    // Recursive halving: the canonical MPICH algorithm.
    const std::size_t total = static_cast<std::size_t>(size) * block_bytes;
    auto acc = detail::scratch_if(sendbuf != nullptr, total);
    auto tmp = detail::scratch_if(sendbuf != nullptr, total / 2);
    detail::copy_block(acc.get(), sendbuf, total);
    ctx.compute_flops(static_cast<double>(count) * size);

    std::size_t cur_off = 0;                      // in blocks
    auto cur_cnt = static_cast<std::size_t>(size);  // blocks held
    for (int mask = size >> 1; mask >= 1; mask >>= 1) {
      const int partner = rank ^ mask;
      const std::size_t half = cur_cnt / 2;
      const bool keep_upper = (rank & mask) != 0;
      const std::size_t send_off = keep_upper ? cur_off : cur_off + half;
      const std::size_t keep_off = keep_upper ? cur_off + half : cur_off;
      r.send(partner, detail::block_at(acc.get(), send_off, block_bytes),
             half * block_bytes);
      r.recv(partner, tmp.get(), half * block_bytes);
      if (acc != nullptr && tmp != nullptr)
        for (std::size_t b = 0; b < half; ++b)
          combine(detail::block_at(acc.get(), keep_off + b, block_bytes),
                  detail::block_at(tmp.get(), b, block_bytes), count, type,
                  op);
      cur_off = keep_off;
      cur_cnt = half;
    }
    check(cur_cnt == 1 && cur_off == static_cast<std::size_t>(rank),
          "reduce_scatter bookkeeping broke");
    detail::copy_block(recvbuf,
                       detail::block_at(acc.get(), cur_off, block_bytes),
                       block_bytes);
    return;
  }

  // Non-power-of-two fallback: reduce to rank 0, then scatter.
  const std::size_t total = static_cast<std::size_t>(size) * block_bytes;
  std::unique_ptr<std::byte[]> full =
      (rank == 0) ? detail::scratch_if(sendbuf != nullptr, total) : nullptr;
  reduce(ctx, sendbuf, full.get(), static_cast<std::size_t>(size) * count,
         type, op, 0, comm, kind);
  scatter(ctx, full.get(), count, type, recvbuf, 0, comm, kind);
}

}  // namespace mpim::mpi::coll
