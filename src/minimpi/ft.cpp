#include "minimpi/ft.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#include "minimpi/coll.h"
#include "minimpi/engine.h"
#include "support/error.h"
#include "telemetry/log.h"

namespace mpim::mpi {

namespace {

/// One all-to-all exchange round of the recovery protocols: sends
/// `payload` to every other member *unconditionally* (a send's cost never
/// depends on wall-clock failure knowledge, so clocks stay deterministic;
/// a delivery into a dead rank's inbox is harmless), then collects every
/// member's payload with a failure-aware bounded receive. Members that
/// cannot contribute -- crashed, or silent past the watchdog timeout --
/// are marked in `dead`; received payloads are handed to `fold`.
template <typename Fold>
void exchange_round(Ctx& ctx, const Comm& comm, int me,
                    std::vector<std::uint8_t>& dead, const void* payload,
                    std::size_t bytes, Fold&& fold) {
  Engine& eng = ctx.engine();
  const int n = comm.size();
  const int tag = coll::coll_tag(ctx.next_coll_seq(comm));
  const double timeout_s = eng.effective_watchdog_s();
  for (int g = 0; g < n; ++g) {
    if (g == me) continue;
    ctx.send_bytes(comm.world_rank_of(g), comm, tag, CommKind::tool, payload,
                   bytes);
  }
  std::vector<std::uint8_t> incoming(bytes);
  for (int g = 0; g < n; ++g) {
    if (g == me) continue;
    Status st;
    const Ctx::RecvWait rc =
        ctx.recv_bytes_wait(comm.world_rank_of(g), comm, tag, CommKind::tool,
                            incoming.data(), bytes, &st, timeout_s);
    if (rc == Ctx::RecvWait::ok) {
      fold(incoming.data(), g);
      continue;
    }
    dead[static_cast<std::size_t>(g)] = 1;
    if (rc == Ctx::RecvWait::timeout)
      telemetry::log(telemetry::LogLevel::warn, ctx.world_rank(), "ft",
                     "recovery exchange: member " + std::to_string(g) +
                         " (world " + std::to_string(comm.world_rank_of(g)) +
                         ") silent past " + std::to_string(timeout_s) +
                         "s, treating as failed");
  }
}

/// The locally-known dead set of `comm` in group-rank bitmap form.
std::vector<std::uint8_t> local_dead_view(Ctx& ctx, const Comm& comm) {
  const Engine& eng = ctx.engine();
  std::vector<std::uint8_t> dead(static_cast<std::size_t>(comm.size()), 0);
  for (int g = 0; g < comm.size(); ++g)
    if (eng.rank_dead(comm.world_rank_of(g)))
      dead[static_cast<std::size_t>(g)] = 1;
  return dead;
}

int my_group_rank(Ctx& ctx, const Comm& comm, const char* op) {
  check(!comm.is_null(), std::string(op) + " on null communicator");
  const int me = comm.group_rank_of_world(ctx.world_rank());
  check(me >= 0, std::string(op) + ": caller not in communicator");
  return me;
}

}  // namespace

int comm_failure_ack(const Comm& comm) {
  return Ctx::current().ack_failures(comm);
}

std::vector<int> comm_get_failed(const Comm& comm) {
  return Ctx::current().acked_failures(comm);
}

void comm_revoke(const Comm& comm) {
  Ctx::current().engine().revoke_comm(comm);
}

bool comm_is_revoked(const Comm& comm) {
  return Ctx::current().engine().comm_revoked(comm);
}

Comm comm_shrink(const Comm& comm) {
  Ctx& ctx = Ctx::current();
  Engine& eng = ctx.engine();
  const int me = my_group_rank(ctx, comm, "comm_shrink");
  const int n = comm.size();
  // The epoch makes repeated shrinks of one parent distinct communicators
  // even when the survivor set is unchanged.
  const std::uint32_t epoch = ctx.next_mgmt_seq(comm);

  // Two rounds of dead-set flooding. Round 1 reconciles views of crashes
  // that predate the shrink (members that received the victim's last words
  // vs. members that did not); round 2 spreads the round-1 union, covering
  // a crash *during* round 1. A crash during round 2 is the documented
  // unprotected window (docs/FAULTS.md).
  std::vector<std::uint8_t> dead = local_dead_view(ctx, comm);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::uint8_t> mine = dead;  // snapshot: sends carry one view
    exchange_round(ctx, comm, me, dead, mine.data(), mine.size(),
                   [&](const std::uint8_t* peer_view, int /*from*/) {
                     for (int g = 0; g < n; ++g)
                       dead[static_cast<std::size_t>(g)] |= peer_view[g];
                   });
  }
  dead[static_cast<std::size_t>(me)] = 0;  // the caller is alive

  // Agreed failures become acked: later operations on the parent fail
  // fast instead of re-discovering the crash.
  ctx.ack_failure_bitmap(comm, dead);

  std::vector<int> survivors;
  std::string roster;
  for (int g = 0; g < n; ++g) {
    if (dead[static_cast<std::size_t>(g)] != 0) continue;
    survivors.push_back(comm.world_rank_of(g));
    roster += "." + std::to_string(g);
  }
  // Survivor list in the key: should the unprotected window ever split the
  // views, factions intern *different* communicators (a deterministic
  // watchdog failure downstream) instead of silently sharing one comm
  // with disagreeing groups.
  const std::string key = "shrink:" + std::to_string(comm.context_id()) +
                          ":" + std::to_string(epoch) + ":" + roster;
  Comm out = eng.intern_comm(key, std::move(survivors));
  eng.set_errmode(out, eng.errmode(comm));
  return out;
}

bool comm_agree(const Comm& comm, int* flag) {
  Ctx& ctx = Ctx::current();
  const int me = my_group_rank(ctx, comm, "comm_agree");
  const int n = comm.size();
  check(flag != nullptr, "comm_agree needs a flag");

  // Failures already acked at entry do not count against agreement
  // (ULFM: acked failures make MPIX_Comm_agree return MPI_SUCCESS).
  std::vector<std::uint8_t> entry_acked(static_cast<std::size_t>(n), 0);
  for (int g = 0; g < n; ++g)
    if (ctx.failure_acked(comm, comm.world_rank_of(g)))
      entry_acked[static_cast<std::size_t>(g)] = 1;

  std::uint64_t acc =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(*flag));
  std::vector<std::uint8_t> dead = local_dead_view(ctx, comm);
  // Round 1 exchanges raw contributions; round 2 exchanges the partial
  // ANDs, so a contribution one member missed still reaches it
  // transitively through any member that got it.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::uint8_t> payload(sizeof(std::uint64_t) +
                                      static_cast<std::size_t>(n));
    std::memcpy(payload.data(), &acc, sizeof acc);
    std::memcpy(payload.data() + sizeof acc, dead.data(), dead.size());
    std::vector<std::uint8_t> mine = payload;
    exchange_round(ctx, comm, me, dead, mine.data(), mine.size(),
                   [&](const std::uint8_t* bytes, int /*from*/) {
                     std::uint64_t theirs = 0;
                     std::memcpy(&theirs, bytes, sizeof theirs);
                     acc &= theirs;
                     for (int g = 0; g < n; ++g)
                       dead[static_cast<std::size_t>(g)] |=
                           bytes[sizeof theirs + static_cast<std::size_t>(g)];
                   });
  }
  dead[static_cast<std::size_t>(me)] = 0;

  *flag = static_cast<int>(static_cast<std::uint32_t>(acc));
  for (int g = 0; g < n; ++g)
    if (dead[static_cast<std::size_t>(g)] != 0 &&
        entry_acked[static_cast<std::size_t>(g)] == 0)
      return false;
  return true;
}

}  // namespace mpim::mpi
