// Collective algorithms, decomposed into point-to-point messages.
//
// This decomposition is the heart of the reproduction: the monitoring hook
// sits below these algorithms, so a session observes the real tree/ring
// pattern of every collective -- the capability the paper singles out as
// unique to the Open MPI pml_monitoring component.
//
// All functions work in *group-rank* space of the given communicator and
// take the CommKind under which their traffic is tagged: user collectives
// pass CommKind::coll, the monitoring library's own gathers pass
// CommKind::tool (invisible to monitoring, still paying network time).
#pragma once

#include <cstddef>

#include "minimpi/comm.h"
#include "minimpi/engine.h"
#include "minimpi/types.h"

namespace mpim::mpi::coll {

/// Tag space reserved for collective rounds (above kMaxUserTag).
inline constexpr int kCollTagBase = 1 << 28;

inline int coll_tag(std::uint32_t seq) {
  return kCollTagBase | static_cast<int>(seq & ((1u << 27) - 1));
}

void barrier(Ctx& ctx, const Comm& comm, CommKind kind);

void bcast(Ctx& ctx, void* buf, std::size_t count, Type type, int root,
           const Comm& comm, CommKind kind);

/// recvbuf significant only at root; sendbuf may equal recvbuf (in place).
/// Null buffers make this a timing/monitoring-only collective.
void reduce(Ctx& ctx, const void* sendbuf, void* recvbuf, std::size_t count,
            Type type, Op op, int root, const Comm& comm, CommKind kind);

void allreduce(Ctx& ctx, const void* sendbuf, void* recvbuf,
               std::size_t count, Type type, Op op, const Comm& comm,
               CommKind kind);

/// Each rank contributes `count` elements; root receives size*count.
void gather(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
            void* recvbuf, int root, const Comm& comm, CommKind kind);

void scatter(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
             void* recvbuf, int root, const Comm& comm, CommKind kind);

void allgather(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
               void* recvbuf, const Comm& comm, CommKind kind);

/// sendbuf holds size blocks of `count` elements, block j for rank j.
void alltoall(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
              void* recvbuf, const Comm& comm, CommKind kind);

/// Inclusive prefix reduction: recvbuf on rank i = op over ranks 0..i.
void scan(Ctx& ctx, const void* sendbuf, void* recvbuf, std::size_t count,
          Type type, Op op, const Comm& comm, CommKind kind);

/// Exclusive prefix reduction: rank 0's recvbuf is left untouched (like
/// MPI_Exscan), rank i>0 gets op over ranks 0..i-1.
void exscan(Ctx& ctx, const void* sendbuf, void* recvbuf, std::size_t count,
            Type type, Op op, const Comm& comm, CommKind kind);

/// MPI_Reduce_scatter_block: element-wise reduction of size*count inputs,
/// rank i receives block i of the result (count elements). Implemented by
/// recursive halving for power-of-two sizes, reduce+scatter otherwise.
void reduce_scatter_block(Ctx& ctx, const void* sendbuf, void* recvbuf,
                          std::size_t count, Type type, Op op,
                          const Comm& comm, CommKind kind);

}  // namespace mpim::mpi::coll
