// Nonblocking communication requests.
//
// Sends are eager (buffered at the engine), so an isend completes
// immediately. An irecv records its matching parameters; the actual
// matching happens at wait/test time -- a documented simplification of the
// MPI posted-receive queue that is indistinguishable for programs that
// wait on requests in post order.
#pragma once

#include <cstddef>

#include "minimpi/comm.h"
#include "minimpi/types.h"

namespace mpim::mpi {

class Request {
 public:
  Request() = default;

  bool done() const { return done_; }
  /// Valid once done() (after wait() or a successful test()).
  const Status& status() const { return status_; }

 private:
  friend Request isend(const void*, std::size_t, Type, int, int, const Comm&);
  friend Request irecv(void*, std::size_t, Type, int, int, const Comm&);
  friend Status wait(Request&);
  friend bool test(Request&);

  enum class Kind { null, send, recv };
  Kind kind_ = Kind::null;
  bool done_ = false;
  Status status_;

  // Pending-receive parameters (world-rank space).
  void* buf_ = nullptr;
  std::size_t capacity_ = 0;
  int src_world_ = kAnySource;
  int tag_ = kAnyTag;
  Comm comm_;
};

}  // namespace mpim::mpi
