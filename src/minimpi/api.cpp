#include "minimpi/api.h"

#include <algorithm>

#include "minimpi/coll.h"

namespace mpim::mpi {

namespace {

int to_world(const Comm& comm, int comm_rank_or_any) {
  if (comm_rank_or_any == kAnySource) return kAnySource;
  return comm.world_rank_of(comm_rank_or_any);
}

Status to_comm_status(const Comm& comm, Status world_status) {
  if (world_status.source != kAnySource)
    world_status.source = comm.group_rank_of_world(world_status.source);
  return world_status;
}

void check_user_tag(int tag) {
  check(tag >= 0 && tag <= kMaxUserTag, "user tag out of range");
}

void check_recv_tag(int tag) {
  check(tag == kAnyTag || (tag >= 0 && tag <= kMaxUserTag),
        "receive tag out of range");
}

}  // namespace

Comm comm_world() { return Ctx::current().world(); }

int comm_rank(const Comm& comm) {
  const int r = comm.group_rank_of_world(Ctx::current().world_rank());
  check(r >= 0, "calling rank is not in the communicator");
  return r;
}

int comm_size(const Comm& comm) { return comm.size(); }

double wtime() { return Ctx::current().now(); }

void compute(double seconds) { Ctx::current().advance(seconds); }

void compute_flops(double flops) { Ctx::current().compute_flops(flops); }

// --- communicator management ------------------------------------------------

Comm comm_split(const Comm& comm, int color, int key) {
  Ctx& ctx = Ctx::current();
  struct CK {
    int color;
    int key;
    int parent_rank;
  };
  const int size = comm.size();
  const int myrank = comm_rank(comm);
  std::vector<CK> all(static_cast<std::size_t>(size));
  const CK mine{color, key, myrank};
  coll::allgather(ctx, &mine, sizeof(CK), Type::Byte, all.data(), comm,
                  CommKind::tool);

  const std::uint32_t epoch = ctx.next_mgmt_seq(comm);
  if (color < 0) return Comm();  // MPI_UNDEFINED

  std::vector<CK> members;
  for (const CK& ck : all)
    if (ck.color == color) members.push_back(ck);
  std::sort(members.begin(), members.end(), [](const CK& a, const CK& b) {
    return a.key != b.key ? a.key < b.key : a.parent_rank < b.parent_rank;
  });

  std::vector<int> world_group;
  world_group.reserve(members.size());
  for (const CK& ck : members)
    world_group.push_back(comm.world_rank_of(ck.parent_rank));

  const std::string reg_key = "split:" + std::to_string(comm.context_id()) +
                              ":" + std::to_string(epoch) + ":" +
                              std::to_string(color);
  return ctx.engine().intern_comm(reg_key, std::move(world_group));
}

void comm_set_errhandler(const Comm& comm, ErrMode mode) {
  Ctx::current().engine().set_errmode(comm, mode);
}

ErrMode comm_get_errhandler(const Comm& comm) {
  return Ctx::current().engine().errmode(comm);
}

Comm comm_dup(const Comm& comm) {
  Ctx& ctx = Ctx::current();
  coll::barrier(ctx, comm, CommKind::tool);
  const std::uint32_t epoch = ctx.next_mgmt_seq(comm);
  const std::string reg_key =
      "dup:" + std::to_string(comm.context_id()) + ":" + std::to_string(epoch);
  return ctx.engine().intern_comm(reg_key, comm.group());
}

// --- point-to-point ----------------------------------------------------------

void send(const void* buf, std::size_t count, Type type, int dst, int tag,
          const Comm& comm) {
  check_user_tag(tag);
  Ctx::current().send_bytes(to_world(comm, dst), comm, tag, CommKind::p2p, buf,
                            count * type_size(type));
}

Status recv(void* buf, std::size_t count, Type type, int src, int tag,
            const Comm& comm) {
  check_recv_tag(tag);
  const Status st = Ctx::current().recv_bytes(
      to_world(comm, src), comm, tag, CommKind::p2p, buf,
      count * type_size(type));
  return to_comm_status(comm, st);
}

Status sendrecv(const void* sendbuf, std::size_t sendcount, Type type,
                int dst, int sendtag, void* recvbuf, std::size_t recvcount,
                int src, int recvtag, const Comm& comm) {
  send(sendbuf, sendcount, type, dst, sendtag, comm);
  return recv(recvbuf, recvcount, type, src, recvtag, comm);
}

Status recv_timeout(void* buf, std::size_t count, Type type, int src, int tag,
                    const Comm& comm, double timeout_s) {
  check_recv_tag(tag);
  Ctx& ctx = Ctx::current();
  const int src_world = to_world(comm, src);
  Status st;
  const Ctx::RecvWait outcome =
      ctx.recv_bytes_wait(src_world, comm, tag, CommKind::p2p, buf,
                          count * type_size(type), &st, timeout_s);
  if (outcome == Ctx::RecvWait::ok) return to_comm_status(comm, st);

  std::exception_ptr err;
  if (outcome == Ctx::RecvWait::peer_dead) {
    const double when = ctx.engine().dead_time(src_world);
    err = std::make_exception_ptr(RankFailedError(
        src_world, when,
        "recv(src=" + std::to_string(src) + ", tag=" + std::to_string(tag) +
            ", comm=" + std::to_string(comm.context_id()) +
            ") failed: source rank crashed at t=" + std::to_string(when) +
            "s"));
  } else {
    err = std::make_exception_ptr(TimeoutError(
        timeout_s, "recv(src=" + std::to_string(src) +
                       ", tag=" + std::to_string(tag) + ", comm=" +
                       std::to_string(comm.context_id()) + ") timed out after " +
                       std::to_string(timeout_s) + "s"));
  }
  if (ctx.engine().errmode(comm) == ErrMode::fatal) ctx.engine().fail_run(err);
  std::rethrow_exception(err);
}

Request isend(const void* buf, std::size_t count, Type type, int dst, int tag,
              const Comm& comm) {
  send(buf, count, type, dst, tag, comm);
  Request req;
  req.kind_ = Request::Kind::send;
  req.done_ = true;
  req.status_ = Status{kAnySource, tag, count * type_size(type)};
  return req;
}

Request irecv(void* buf, std::size_t count, Type type, int src, int tag,
              const Comm& comm) {
  check_recv_tag(tag);
  Request req;
  req.kind_ = Request::Kind::recv;
  req.buf_ = buf;
  req.capacity_ = count * type_size(type);
  req.src_world_ = to_world(comm, src);
  req.tag_ = tag;
  req.comm_ = comm;
  return req;
}

Status wait(Request& request) {
  check(request.kind_ != Request::Kind::null, "wait on a null request");
  if (request.done_) return request.status_;
  const Status st = Ctx::current().recv_bytes(
      request.src_world_, request.comm_, request.tag_, CommKind::p2p,
      request.buf_, request.capacity_);
  request.status_ = to_comm_status(request.comm_, st);
  request.done_ = true;
  return request.status_;
}

bool test(Request& request) {
  check(request.kind_ != Request::Kind::null, "test on a null request");
  if (request.done_) return true;
  Status st;
  if (!Ctx::current().try_recv_bytes(request.src_world_, request.comm_,
                                     request.tag_, CommKind::p2p,
                                     request.buf_, request.capacity_, &st))
    return false;
  request.status_ = to_comm_status(request.comm_, st);
  request.done_ = true;
  return true;
}

void waitall(std::span<Request> requests) {
  for (Request& r : requests) wait(r);
}

bool iprobe(int src, int tag, const Comm& comm, Status* status) {
  check_recv_tag(tag);
  Status st;
  if (!Ctx::current().iprobe_bytes(to_world(comm, src), comm, tag,
                                   CommKind::p2p, &st))
    return false;
  if (status != nullptr) *status = to_comm_status(comm, st);
  return true;
}

// --- collectives -------------------------------------------------------------

namespace {

/// One telemetry span per user-invoked collective; the p2p sends of the
/// decomposition record themselves as children (coll_common.h).
struct CollSpan {
  Ctx& ctx;
  bool on;
  CollSpan(Ctx& c, const char* name)
      : ctx(c),
        on(c.engine().telemetry().span_begin(c.world_rank(), name, 'C',
                                             c.now())) {}
  ~CollSpan() {
    if (on) ctx.engine().telemetry().span_end(ctx.world_rank(), ctx.now());
  }
};

}  // namespace

void barrier(const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "barrier");
  coll::barrier(ctx, comm, CommKind::coll);
}
void bcast(void* buf, std::size_t count, Type type, int root,
           const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "bcast");
  coll::bcast(ctx, buf, count, type, root, comm, CommKind::coll);
}
void reduce(const void* sendbuf, void* recvbuf, std::size_t count, Type type,
            Op op, int root, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "reduce");
  coll::reduce(ctx, sendbuf, recvbuf, count, type, op, root, comm,
               CommKind::coll);
}
void allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
               Type type, Op op, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "allreduce");
  coll::allreduce(ctx, sendbuf, recvbuf, count, type, op, comm,
                  CommKind::coll);
}
void gather(const void* sendbuf, std::size_t count, Type type, void* recvbuf,
            int root, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "gather");
  coll::gather(ctx, sendbuf, count, type, recvbuf, root, comm,
               CommKind::coll);
}
void scatter(const void* sendbuf, std::size_t count, Type type, void* recvbuf,
             int root, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "scatter");
  coll::scatter(ctx, sendbuf, count, type, recvbuf, root, comm,
                CommKind::coll);
}
void allgather(const void* sendbuf, std::size_t count, Type type,
               void* recvbuf, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "allgather");
  coll::allgather(ctx, sendbuf, count, type, recvbuf, comm, CommKind::coll);
}
void alltoall(const void* sendbuf, std::size_t count, Type type,
              void* recvbuf, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "alltoall");
  coll::alltoall(ctx, sendbuf, count, type, recvbuf, comm, CommKind::coll);
}
void scan(const void* sendbuf, void* recvbuf, std::size_t count, Type type,
          Op op, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "scan");
  coll::scan(ctx, sendbuf, recvbuf, count, type, op, comm, CommKind::coll);
}
void exscan(const void* sendbuf, void* recvbuf, std::size_t count, Type type,
            Op op, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "exscan");
  coll::exscan(ctx, sendbuf, recvbuf, count, type, op, comm, CommKind::coll);
}
void reduce_scatter_block(const void* sendbuf, void* recvbuf,
                          std::size_t count, Type type, Op op,
                          const Comm& comm) {
  Ctx& ctx = Ctx::current();
  CollSpan span(ctx, "reduce_scatter_block");
  coll::reduce_scatter_block(ctx, sendbuf, recvbuf, count, type, op, comm,
                             CommKind::coll);
}

// --- typed helpers -----------------------------------------------------------

template <>
Type type_of<char>() { return Type::Char; }
template <>
Type type_of<int>() { return Type::Int; }
template <>
Type type_of<unsigned>() { return Type::Unsigned; }
template <>
Type type_of<long>() { return Type::Long; }
template <>
Type type_of<unsigned long>() { return Type::UnsignedLong; }
template <>
Type type_of<float>() { return Type::Float; }
template <>
Type type_of<double>() { return Type::Double; }

}  // namespace mpim::mpi
