// ULFM-style fault-tolerance primitives (MPIX_Comm_* analogs).
//
// The engine already *detects* failures (FaultPlan crashes, typed
// RankFailedError, failure-aware timed receives); this header is the
// *recovery* vocabulary on top:
//
//   comm_failure_ack / comm_get_failed -- acknowledge locally-observed
//     failures so later operations on acked-dead peers short-circuit with
//     RankFailedError instead of re-eating a timeout.
//   comm_revoke / comm_is_revoked -- engine-wide poison pill: members
//     blocked in (or entering) operations on the revoked communicator
//     raise CommRevokedError, so survivors scattered across a broken
//     collective converge onto the recovery path instead of deadlocking.
//   comm_shrink -- agree on the dead set and intern a survivors-only
//     communicator with deterministic rank renumbering (group order of the
//     parent, dead members removed).
//   comm_agree -- fault-tolerant agreement: bitwise-AND of `*flag` over
//     the members that can still communicate.
//
// Determinism contract: shrink and agree exchange their views with
// unconditional sends to every member (send costs never depend on
// wall-clock failure knowledge) and failure-aware timed receives whose
// outcome -- message or crash-time completion -- is a pure function of
// virtual time. One documented window remains: a rank crashing *during the
// final exchange round* can leave survivors with divergent views (see
// docs/FAULTS.md, Recovery).
#pragma once

#include <vector>

#include "minimpi/comm.h"

namespace mpim::mpi {

/// Acknowledges every failure of a member of `comm` that this rank has
/// observed so far. Returns the total number of acked members. After the
/// ack, send/recv involving those members raise RankFailedError
/// immediately (honoring the communicator's errmode).
int comm_failure_ack(const Comm& comm);

/// Group ranks of `comm` this rank has acked as failed, ascending.
std::vector<int> comm_get_failed(const Comm& comm);

/// Revokes `comm` engine-wide (idempotent). Tool-kind traffic is exempt,
/// so monitoring gathers and shrink/agree still run on a revoked comm.
void comm_revoke(const Comm& comm);
bool comm_is_revoked(const Comm& comm);

/// Collective over the surviving members: agrees on the dead set and
/// returns a survivors-only communicator. Rank renumbering is
/// deterministic (parent group order with dead members removed), the
/// result is interned so every survivor gets the same context id, and the
/// parent's errmode carries over. The agreed dead set is also acked, so
/// later operations on the *parent* involving dead members fail fast.
Comm comm_shrink(const Comm& comm);

/// Fault-tolerant agreement on `*flag` (in/out, bitwise AND over the
/// members that contributed). Returns true when every live member's
/// contribution was folded in and every excluded member had already been
/// acked by this rank; false when an unacked failure perturbed the result
/// (ULFM's MPI_ERR_PROC_FAILED analog -- ack and retry to accept it).
bool comm_agree(const Comm& comm, int* flag);

}  // namespace mpim::mpi
