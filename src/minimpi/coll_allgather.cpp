// Allgather algorithms: ring (default) and Bruck-style recursive doubling.
#include "minimpi/coll_common.h"

namespace mpim::mpi::coll {

namespace {

void allgather_ring(detail::Round& r, const void* sendbuf, void* recvbuf,
                    std::size_t block_bytes) {
  const int size = r.size();
  const int rank = r.rank();
  detail::copy_block(detail::block_at(recvbuf, static_cast<std::size_t>(rank),
                                      block_bytes),
                     sendbuf, block_bytes);
  const int dst = (rank + 1) % size;
  const int src = (rank - 1 + size) % size;
  int send_idx = rank;
  int recv_idx = src;
  for (int step = 1; step < size; ++step) {
    r.send(dst,
           detail::block_at(recvbuf, static_cast<std::size_t>(send_idx),
                            block_bytes),
           block_bytes);
    r.recv(src,
           detail::block_at(recvbuf, static_cast<std::size_t>(recv_idx),
                            block_bytes),
           block_bytes);
    send_idx = recv_idx;
    recv_idx = (recv_idx - 1 + size) % size;
  }
}

// Bruck: log2-rounds with doubling block counts on a rotated buffer.
// Works for any communicator size.
void allgather_bruck(detail::Round& r, const void* sendbuf, void* recvbuf,
                     std::size_t block_bytes) {
  const int size = r.size();
  const int rank = r.rank();
  // Rotated scratch: block i holds the contribution of rank (rank+i)%size.
  auto scratch = detail::scratch_if(
      recvbuf != nullptr, static_cast<std::size_t>(size) * block_bytes);
  detail::copy_block(scratch.get(), sendbuf, block_bytes);

  int have = 1;  // blocks currently held (contiguous from 0)
  for (int step = 1; step < size; step <<= 1) {
    const int chunk = std::min(have, size - have);
    const int dst = (rank - step + size) % size;
    const int src = (rank + step) % size;
    r.send(dst, scratch.get(), static_cast<std::size_t>(chunk) * block_bytes);
    r.recv(src,
           detail::block_at(scratch.get(), static_cast<std::size_t>(have),
                            block_bytes),
           static_cast<std::size_t>(chunk) * block_bytes);
    have += chunk;
  }

  // Un-rotate into the caller's buffer.
  if (recvbuf != nullptr && scratch != nullptr) {
    for (int i = 0; i < size; ++i) {
      const int owner = (rank + i) % size;
      detail::copy_block(
          detail::block_at(recvbuf, static_cast<std::size_t>(owner),
                           block_bytes),
          detail::block_at(scratch.get(), static_cast<std::size_t>(i),
                           block_bytes),
          block_bytes);
    }
  }
}

}  // namespace

void allgather(Ctx& ctx, const void* sendbuf, std::size_t count, Type type,
               void* recvbuf, const Comm& comm, CommKind kind) {
  detail::Round r(ctx, comm, kind);
  const std::size_t block_bytes = count * type_size(type);
  if (r.size() == 1) {
    detail::copy_block(recvbuf, sendbuf, block_bytes);
    return;
  }
  switch (ctx.engine().config().coll.allgather) {
    case AllgatherAlgo::ring:
      allgather_ring(r, sendbuf, recvbuf, block_bytes);
      return;
    case AllgatherAlgo::bruck:
      allgather_bruck(r, sendbuf, recvbuf, block_bytes);
      return;
  }
  fail("unknown allgather algorithm");
}

}  // namespace mpim::mpi::coll
