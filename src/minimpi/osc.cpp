#include "minimpi/osc.h"

#include <cstring>
#include <mutex>

#include "minimpi/coll.h"
#include "minimpi/engine.h"
#include "support/error.h"

namespace mpim::mpi {

struct Win::Impl {
  Comm comm;
  struct Exposure {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
  };
  std::vector<Exposure> exposures;  // indexed by group rank
  std::mutex accumulate_mutex;      // serializes concurrent accumulates

  explicit Impl(const Comm& c)
      : comm(c), exposures(static_cast<std::size_t>(c.size())) {}
};

Win Win::create(void* base, std::size_t bytes, const Comm& comm) {
  Ctx& ctx = Ctx::current();
  const int myrank = comm.group_rank_of_world(ctx.world_rank());
  check(myrank >= 0, "Win::create caller not in communicator");

  const std::uint32_t epoch = ctx.next_mgmt_seq(comm);
  const std::string key = "win:" + std::to_string(comm.context_id()) + ":" +
                          std::to_string(epoch);
  auto impl = std::static_pointer_cast<Impl>(
      ctx.engine().get_or_create_tool_object(
          key, [&] { return std::make_shared<Impl>(comm); }));
  impl->exposures[static_cast<std::size_t>(myrank)] =
      Impl::Exposure{static_cast<std::byte*>(base), bytes};
  // All members must have registered their exposure before anyone accesses
  // a remote window.
  coll::barrier(ctx, comm, CommKind::tool);
  return Win(std::move(impl));
}

const Comm& Win::comm() const { return impl_->comm; }

void Win::fence() {
  coll::barrier(Ctx::current(), impl_->comm, CommKind::tool);
}

struct WinAccess {
  // Shared validation for put/get/accumulate.
  static std::byte* region(Win::Impl& impl, int target_rank, std::size_t disp,
                           std::size_t bytes) {
    check(target_rank >= 0 && target_rank < impl.comm.size(),
          "RMA target rank out of range");
    const auto& exp = impl.exposures[static_cast<std::size_t>(target_rank)];
    check(disp + bytes <= exp.bytes, "RMA access outside the target window");
    return exp.base + disp;
  }
};

void Win::put(const void* origin, std::size_t count, Type type,
              int target_rank, std::size_t target_disp) {
  Ctx& ctx = Ctx::current();
  const std::size_t bytes = count * type_size(type);
  std::byte* dst = WinAccess::region(*impl_, target_rank, target_disp, bytes);
  ctx.rma_transfer(ctx.world_rank(), impl_->comm.world_rank_of(target_rank),
                   impl_->comm, bytes);
  if (origin != nullptr && bytes > 0) std::memcpy(dst, origin, bytes);
}

void Win::get(void* origin, std::size_t count, Type type, int target_rank,
              std::size_t target_disp) {
  Ctx& ctx = Ctx::current();
  const std::size_t bytes = count * type_size(type);
  const std::byte* src =
      WinAccess::region(*impl_, target_rank, target_disp, bytes);
  // The target's NIC transmits: attribute the traffic to it.
  ctx.rma_transfer(impl_->comm.world_rank_of(target_rank), ctx.world_rank(),
                   impl_->comm, bytes);
  if (origin != nullptr && bytes > 0) std::memcpy(origin, src, bytes);
}

void Win::accumulate(const void* origin, std::size_t count, Type type, Op op,
                     int target_rank, std::size_t target_disp) {
  Ctx& ctx = Ctx::current();
  const std::size_t bytes = count * type_size(type);
  std::byte* dst = WinAccess::region(*impl_, target_rank, target_disp, bytes);
  ctx.rma_transfer(ctx.world_rank(), impl_->comm.world_rank_of(target_rank),
                   impl_->comm, bytes);
  if (origin != nullptr && bytes > 0) {
    std::lock_guard lock(impl_->accumulate_mutex);
    reduce_in_place(dst, origin, count, type, op);
  }
}

}  // namespace mpim::mpi
