// MPI-style user API.
//
// Free functions that resolve the calling rank through Ctx::current(), so
// application code reads like MPI without threading an explicit context
// everywhere. All rank arguments are ranks *within the given communicator*.
#pragma once

#include <span>

#include "minimpi/comm.h"
#include "minimpi/engine.h"
#include "minimpi/request.h"
#include "minimpi/types.h"

namespace mpim::mpi {

// --- environment -----------------------------------------------------------

Comm comm_world();
int comm_rank(const Comm& comm);
int comm_size(const Comm& comm);

/// Virtual time of the calling rank (MPI_Wtime).
double wtime();
/// Model `seconds` of computation (or sleeping) on the calling rank.
void compute(double seconds);
/// Model `flops` floating point operations at the configured rate.
void compute_flops(double flops);

// --- communicator management ------------------------------------------------

/// Color < 0 plays MPI_UNDEFINED: the caller gets a null communicator.
/// Members with equal color are ordered by (key, parent rank).
Comm comm_split(const Comm& comm, int color, int key);
Comm comm_dup(const Comm& comm);

/// Per-communicator error handling, the MPI_Comm_set_errhandler analog:
/// ErrMode::fatal (default) makes a failed operation tear the run down,
/// ErrMode::ret makes it throw a typed RankFailedError / TimeoutError the
/// caller may catch and recover from. Set the same mode on every member.
void comm_set_errhandler(const Comm& comm, ErrMode mode);
ErrMode comm_get_errhandler(const Comm& comm);

// --- point-to-point ----------------------------------------------------------

void send(const void* buf, std::size_t count, Type type, int dst, int tag,
          const Comm& comm);
Status recv(void* buf, std::size_t count, Type type, int src, int tag,
            const Comm& comm);
Status sendrecv(const void* sendbuf, std::size_t sendcount, Type type,
                int dst, int sendtag, void* recvbuf, std::size_t recvcount,
                int src, int recvtag, const Comm& comm);

/// Receive with a wall-clock timeout. On a matching message behaves like
/// recv(). When the source rank is dead it raises RankFailedError, and
/// after `timeout_s` of host time with no match it raises TimeoutError --
/// under ErrMode::fatal by failing the whole run, under ErrMode::ret by
/// throwing the typed error to the caller.
Status recv_timeout(void* buf, std::size_t count, Type type, int src, int tag,
                    const Comm& comm, double timeout_s);

Request isend(const void* buf, std::size_t count, Type type, int dst, int tag,
              const Comm& comm);
Request irecv(void* buf, std::size_t count, Type type, int src, int tag,
              const Comm& comm);
Status wait(Request& request);
bool test(Request& request);
void waitall(std::span<Request> requests);

/// Non-consuming probe for a matching user message.
bool iprobe(int src, int tag, const Comm& comm, Status* status = nullptr);

// --- collectives -------------------------------------------------------------

void barrier(const Comm& comm);
void bcast(void* buf, std::size_t count, Type type, int root,
           const Comm& comm);
void reduce(const void* sendbuf, void* recvbuf, std::size_t count, Type type,
            Op op, int root, const Comm& comm);
void allreduce(const void* sendbuf, void* recvbuf, std::size_t count,
               Type type, Op op, const Comm& comm);
void gather(const void* sendbuf, std::size_t count, Type type, void* recvbuf,
            int root, const Comm& comm);
void scatter(const void* sendbuf, std::size_t count, Type type, void* recvbuf,
             int root, const Comm& comm);
void allgather(const void* sendbuf, std::size_t count, Type type,
               void* recvbuf, const Comm& comm);
void alltoall(const void* sendbuf, std::size_t count, Type type,
              void* recvbuf, const Comm& comm);
/// Inclusive prefix reduction over the ranks.
void scan(const void* sendbuf, void* recvbuf, std::size_t count, Type type,
          Op op, const Comm& comm);
/// Exclusive prefix reduction (rank 0's recvbuf untouched).
void exscan(const void* sendbuf, void* recvbuf, std::size_t count, Type type,
            Op op, const Comm& comm);
/// Element-wise reduction of size*count elements; rank i gets block i.
void reduce_scatter_block(const void* sendbuf, void* recvbuf,
                          std::size_t count, Type type, Op op,
                          const Comm& comm);

// --- typed convenience overloads ---------------------------------------------

template <typename T>
Type type_of();

template <typename T>
void send(std::span<const T> buf, int dst, int tag, const Comm& comm) {
  send(buf.data(), buf.size(), type_of<T>(), dst, tag, comm);
}
template <typename T>
Status recv(std::span<T> buf, int src, int tag, const Comm& comm) {
  return recv(buf.data(), buf.size(), type_of<T>(), src, tag, comm);
}

}  // namespace mpim::mpi
