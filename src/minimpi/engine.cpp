#include "minimpi/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "fault/fault_plan.h"
#include "minimpi/fiber_sched.h"
#include "support/env.h"
#include "telemetry/log.h"

namespace mpim::mpi {

namespace {
// The executing rank context, owned by the scheduler of the executing
// context rather than by "the rank's thread": in thread mode every rank
// thread is its own trivial scheduler and writes its slot once at entry;
// in fiber mode one OS thread runs every rank and the fiber dispatcher
// repoints this at every context switch (Engine::run_fibers' on_resume).
thread_local Ctx* g_running_ctx = nullptr;
}  // namespace

const char* sched_mode_name(SchedMode mode) {
  return mode == SchedMode::fibers ? "fibers" : "threads";
}

detail::CommImpl::CommImpl(int ctx_id, std::vector<int> members,
                           int world_size)
    : context_id(ctx_id), group(std::move(members)) {
  check(!group.empty(), "empty communicator group");
  world_to_group.assign(static_cast<std::size_t>(world_size), -1);
  for (std::size_t g = 0; g < group.size(); ++g) {
    const int w = group[g];
    check(w >= 0 && w < world_size, "communicator member out of world range");
    check(world_to_group[static_cast<std::size_t>(w)] == -1,
          "duplicate world rank in communicator");
    world_to_group[static_cast<std::size_t>(w)] = static_cast<int>(g);
  }
}

namespace {

/// Applies the fabric selection (EngineConfig::fabric, overridable by the
/// strict-parsed MPIM_TOPO environment variable) before the engine wires
/// itself to the cost model. Garbage is rejected with a logged warning and
/// the configured model stands (the tree default); a valid spec replaces
/// the cost model with CostModel::for_fabric sized to hold the placement,
/// keeping the placement when it still fits and falling back to
/// round-robin otherwise.
EngineConfig resolve_fabric_config(EngineConfig cfg) {
  constexpr const char* kGrammar =
      "(want tree|fattree:<k,l,osub>|dragonfly:<a,g,h>[,valiant])";
  std::optional<topo::FabricSpec> spec;
  const auto env = support::env_nonempty_string("MPIM_TOPO");
  if (env.ok()) {
    spec = topo::parse_fabric_spec(env.value);
    if (!spec)
      telemetry::log(telemetry::LogLevel::warn, -1, "engine",
                     "ignoring invalid MPIM_TOPO=\"" + env.raw + "\" " +
                         kGrammar + "; using the configured fabric");
  } else if (env.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "engine",
                   "ignoring invalid MPIM_TOPO=\"" + env.raw + "\" " +
                       kGrammar + "; using the configured fabric");
  }
  if (!spec && !cfg.fabric.empty()) {
    spec = topo::parse_fabric_spec(cfg.fabric);
    if (!spec)
      telemetry::log(telemetry::LogLevel::warn, -1, "engine",
                     "ignoring invalid EngineConfig::fabric=\"" + cfg.fabric +
                         "\" " + kGrammar + "; using the configured model");
  }
  if (!spec) return cfg;
  // "tree" keeps whatever tree model the caller configured (including its
  // custom parameters): the spec names the kind, not a replacement model.
  if (spec->kind == topo::FabricKind::tree &&
      cfg.cost_model.fabric().kind() == topo::FabricKind::tree)
    return cfg;
  if (*spec == cfg.cost_model.fabric().spec()) return cfg;
  const int np = static_cast<int>(cfg.placement.size());
  auto fab = topo::make_fabric(*spec, std::max(1, np));
  cfg.cost_model = net::CostModel::for_fabric(fab);
  bool placement_fits = !cfg.placement.empty();
  try {
    topo::validate_placement(cfg.placement, fab->hierarchy());
  } catch (const Error&) {
    placement_fits = false;
  }
  if (!placement_fits && np >= 1) {
    cfg.placement = topo::round_robin_placement(np, fab->hierarchy());
    telemetry::log(telemetry::LogLevel::info, -1, "engine",
                   "fabric \"" + spec->describe() +
                       "\": configured placement does not fit; using "
                       "round-robin over " +
                       std::to_string(fab->num_leaves()) + " PUs");
  }
  telemetry::log(telemetry::LogLevel::info, -1, "engine",
                 "fabric selected: " + fab->describe());
  return cfg;
}

}  // namespace

Engine::Engine(EngineConfig cfg)
    : cfg_(resolve_fabric_config(std::move(cfg))),
      hub_(cfg_.placement.empty() ? 1
                                  : static_cast<int>(cfg_.placement.size())),
      nic_(std::max(1, cfg_.cost_model.fabric().num_nodes())) {
  check(!cfg_.placement.empty(), "engine needs at least one rank");
  const auto tele_env = support::env_bool("MPIM_TELEMETRY");
  if (tele_env.ok()) {
    hub_.set_enabled(tele_env.value);
  } else if (tele_env.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "engine",
                   "ignoring invalid MPIM_TELEMETRY=\"" + tele_env.raw +
                       "\" (want 0/1, true/false, on/off or yes/no); "
                       "telemetry stays disabled");
  }
  topo::validate_placement(cfg_.placement, cfg_.cost_model.topology());

  const int n = world_size();
  ranks_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) ranks_.push_back(std::make_unique<RankState>());

  std::vector<int> world_group(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) world_group[static_cast<std::size_t>(r)] = r;
  world_comm_ = Comm(
      std::make_shared<const detail::CommImpl>(0, std::move(world_group), n));
  final_clocks_.assign(static_cast<std::size_t>(n), 0.0);
  dead_at_.assign(static_cast<std::size_t>(n), -1.0);
  pending_.assign(static_cast<std::size_t>(n), PendingOp{});
}

Engine::~Engine() = default;

void Engine::set_send_hook(SendHook hook) {
  send_hook_ = std::move(hook);
  send_hook_armed_.store(send_hook_ != nullptr, std::memory_order_release);
}

Comm Engine::intern_comm(const std::string& key,
                         std::vector<int> world_group) {
  std::lock_guard lock(comm_mutex_);
  auto it = comm_registry_.find(key);
  if (it != comm_registry_.end()) return it->second;
  Comm comm(std::make_shared<const detail::CommImpl>(
      next_context_id_++, std::move(world_group), world_size()));
  comm_registry_.emplace(key, comm);
  return comm;
}

std::shared_ptr<void> Engine::get_or_create_tool_object(
    const std::string& key,
    const std::function<std::shared_ptr<void>()>& factory) {
  std::lock_guard lock(tool_objects_mutex_);
  auto it = tool_objects_.find(key);
  if (it != tool_objects_.end()) return it->second;
  auto obj = factory();
  tool_objects_.emplace(key, obj);
  return obj;
}

void Engine::deliver(InFlight msg) {
  const int dst_rank = msg.info.dst_world;
  const double arrival = msg.arrival_s;
  const std::size_t msg_bytes = msg.info.bytes;
  RankState& dst = rank_state(dst_rank);
  {
    std::lock_guard lock(dst.mutex);
    dst.inbox.push_back(std::move(msg));
    ++dst.inbox_version;
    if (hub_.enabled()) {
      const telemetry::StdIds& ids = hub_.ids();
      hub_.registry().observe(ids.engine_inbox_depth, dst_rank,
                              static_cast<double>(dst.inbox.size()));
      hub_.registry().gauge_add(ids.engine_bytes_in_flight, dst_rank,
                                static_cast<std::int64_t>(msg_bytes));
    }
    if (cfg_.nic_contention) {
      // A blocked receiver may wake from this delivery and send as early
      // as `arrival`: feed that bound into the min-clock gate.
      std::lock_guard sched_lock(sched_.mx);
      auto& entry = sched_.entries[static_cast<std::size_t>(dst_rank)];
      if (entry.st == Sched::St::blocked) {
        sched_update_locked(dst_rank, Sched::St::pending, arrival);
      } else if (entry.st == Sched::St::pending && arrival < entry.clock) {
        sched_update_locked(dst_rank, Sched::St::pending, arrival);
      }
    }
  }
  deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (fiber_ != nullptr)
    fiber_->wake(dst_rank);
  else
    dst.cv.notify_all();
}

void Engine::record_error(std::exception_ptr err) {
  std::lock_guard lock(error_mutex_);
  if (!first_error_) first_error_ = err;
}

void Engine::abort_all() {
  abort_.store(true);
  if (fiber_ != nullptr) {
    // Fiber mode: every blocked fiber re-checks the abort flag when it is
    // resumed, so promoting them all drains the world.
    fiber_->wake_all();
    return;
  }
  for (auto& st : ranks_) st->cv.notify_all();
  std::lock_guard lock(sched_.mx);
  for (auto& cv : sched_.cvs)
    if (cv) cv->notify_all();
}

void Engine::fail_run(std::exception_ptr err) {
  record_error(err);
  abort_all();
  throw AbortError();
}

void Engine::set_errmode(const Comm& comm, ErrMode mode) {
  check(!comm.is_null(), "errmode on null communicator");
  std::lock_guard lock(errmode_mutex_);
  errmodes_[comm.context_id()] = mode;
}

ErrMode Engine::errmode(const Comm& comm) const {
  check(!comm.is_null(), "errmode on null communicator");
  std::lock_guard lock(errmode_mutex_);
  auto it = errmodes_.find(comm.context_id());
  return it == errmodes_.end() ? ErrMode::fatal : it->second;
}

void Engine::revoke_comm(const Comm& comm) {
  check(!comm.is_null(), "revoke on null communicator");
  {
    std::lock_guard lock(revoke_mutex_);
    if (!revoked_.insert(comm.context_id()).second) return;  // idempotent
  }
  revoked_count_.fetch_add(1, std::memory_order_release);
  telemetry::log(telemetry::LogLevel::info, -1, "engine",
                 "communicator " + std::to_string(comm.context_id()) +
                     " revoked");
  // Revocation is progress: blocked members must wake, observe it and
  // raise CommRevokedError instead of tripping the watchdog.
  deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (fiber_ != nullptr) {
    fiber_->wake_all();
    return;
  }
  for (auto& st : ranks_) st->cv.notify_all();
}

bool Engine::comm_revoked(const Comm& comm) const {
  if (revoked_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard lock(revoke_mutex_);
  return revoked_.count(comm.context_id()) != 0;
}

void Engine::mark_dead(int world_rank, double when_s) {
  {
    std::lock_guard lock(fail_mutex_);
    auto& slot = dead_at_[static_cast<std::size_t>(world_rank)];
    if (slot >= 0.0) return;
    slot = when_s;
  }
  dead_count_.fetch_add(1, std::memory_order_release);
  hub_.add(hub_.ids().fault_crashes, world_rank);
  PendingOp op;
  op.what = PendingOp::What::crashed;
  op.clock_s = when_s;
  set_pending(world_rank, op);
  // Failure notification broadcast: count as progress (peers of the dead
  // rank will fail over instead of deadlocking) and wake every waiter so
  // it notices promptly.
  deliveries_.fetch_add(1, std::memory_order_relaxed);
  if (fiber_ != nullptr) {
    fiber_->wake_all();
    return;
  }
  for (auto& st : ranks_) st->cv.notify_all();
}

bool Engine::rank_dead(int world_rank) const {
  if (dead_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard lock(fail_mutex_);
  return dead_at_[static_cast<std::size_t>(world_rank)] >= 0.0;
}

double Engine::dead_time(int world_rank) const {
  std::lock_guard lock(fail_mutex_);
  return dead_at_[static_cast<std::size_t>(world_rank)];
}

std::vector<int> Engine::dead_ranks() const {
  std::vector<int> out;
  std::lock_guard lock(fail_mutex_);
  for (int r = 0; r < world_size(); ++r)
    if (dead_at_[static_cast<std::size_t>(r)] >= 0.0) out.push_back(r);
  return out;
}

double Engine::effective_watchdog_s() const {
  const auto env = support::env_positive_double("MPIM_WATCHDOG_S");
  if (env.ok()) return env.value;
  if (env.invalid())
    telemetry::log(telemetry::LogLevel::warn, -1, "engine",
                   "ignoring invalid MPIM_WATCHDOG_S=\"" + env.raw +
                       "\" (want a finite number > 0); using the default");
  // Bigger worlds make slower wall-clock progress on an oversubscribed
  // host, so scale the configured timeout with the world size -- but cap
  // it: an uncapped np/32 scale would mean 40+ minutes of silence before
  // a deadlock report at np=4096. The multiplier stops at 4x and the
  // scaled result never exceeds two minutes (or the configured base when
  // that is already larger). Fiber mode barely needs the watchdog -- its
  // scheduler detects a structural deadlock the moment no context can
  // run -- so the wall timeout only backstops thread mode and bounds
  // timed recovery waits.
  const double scale =
      std::min(4.0, std::max(1.0, static_cast<double>(world_size()) / 32.0));
  return std::min(cfg_.watchdog_wall_timeout_s * scale,
                  std::max(cfg_.watchdog_wall_timeout_s, 120.0));
}

void Engine::set_pending(int rank, const PendingOp& op) {
  std::lock_guard lock(pending_mutex_);
  auto& cur = pending_[static_cast<std::size_t>(rank)];
  // A crash entry is terminal: the epilogue's "exited" note must not hide
  // the crash in the report.
  if (cur.what == PendingOp::What::crashed &&
      op.what != PendingOp::What::crashed)
    return;
  cur = op;
}

void Engine::clear_pending(int rank, PendingOp::What terminal) {
  PendingOp op;
  op.what = terminal;
  set_pending(rank, op);
}

std::string Engine::deadlock_report(int reporter) const {
  std::ostringstream os;
  os << "deadlock: every live rank blocked with no message progress for "
     << watchdog_s_ << "s (detected by rank " << reporter << ")\n";
  // Snapshot the failure state before taking pending_mutex_ (the two locks
  // are never held together): a hang that follows a crash usually means a
  // survivor still depends on the dead rank, which reads very differently
  // from a logic deadlock.
  std::vector<std::pair<int, double>> failed;
  {
    std::lock_guard lock(fail_mutex_);
    for (int r = 0; r < world_size(); ++r)
      if (dead_at_[static_cast<std::size_t>(r)] >= 0.0)
        failed.emplace_back(r, dead_at_[static_cast<std::size_t>(r)]);
  }
  if (failed.empty()) {
    os << "  failed ranks: none (logic deadlock)\n";
  } else {
    os << "  failed ranks:";
    for (const auto& [r, when] : failed)
      os << " " << r << " (crashed at t=" << when << "s)";
    os << "\n  note: survivors blocked on a failed rank should shrink and"
          " continue (see docs/FAULTS.md, Recovery)\n";
  }
  std::lock_guard lock(pending_mutex_);
  for (int r = 0; r < world_size(); ++r) {
    const PendingOp& p = pending_[static_cast<std::size_t>(r)];
    os << "  rank " << r << ": ";
    switch (p.what) {
      case PendingOp::What::none:
        os << "running (not blocked in the engine)";
        break;
      case PendingOp::What::recv:
        os << "blocked in recv(src="
           << (p.src_world == kAnySource ? std::string("any")
                                         : std::to_string(p.src_world))
           << ", tag="
           << (p.tag == kAnyTag ? std::string("any") : std::to_string(p.tag))
           << ", kind=" << comm_kind_name(p.kind) << ", comm=" << p.context_id
           << ") at t=" << p.clock_s << "s";
        break;
      case PendingOp::What::exited:
        os << "exited normally";
        break;
      case PendingOp::What::crashed:
        os << "crashed (fault plan) at t=" << p.clock_s << "s";
        break;
    }
    os << "\n";
  }
  return os.str();
}

void Engine::sched_update_locked(int rank, Sched::St st, double clock) {
  auto& entry = sched_.entries[static_cast<std::size_t>(rank)];
  entry.st = st;
  entry.clock = clock;
  int best = -1;
  for (int r = 0; r < world_size(); ++r) {
    const auto& e = sched_.entries[static_cast<std::size_t>(r)];
    if (e.st == Sched::St::blocked || e.st == Sched::St::done) continue;
    if (best < 0 ||
        e.clock < sched_.entries[static_cast<std::size_t>(best)].clock)
      best = r;
  }
  sched_.min_rank = best;
  if (best >= 0 &&
      sched_.entries[static_cast<std::size_t>(best)].st == Sched::St::gate) {
    if (fiber_ != nullptr)
      fiber_->wake(best);
    else
      sched_.cvs[static_cast<std::size_t>(best)]->notify_all();
  }
}

SchedMode Engine::resolve_sched_mode() const {
  static const char* const kNames[] = {"threads", "fibers"};
  const auto env = support::env_choice("MPIM_SCHED", kNames, 2);
  if (env.ok()) return env.value == 1 ? SchedMode::fibers : SchedMode::threads;
  if (env.invalid())
    telemetry::log(telemetry::LogLevel::warn, -1, "engine",
                   "ignoring invalid MPIM_SCHED=\"" + env.raw +
                       "\" (want threads|fibers); using the configured \"" +
                       std::string(sched_mode_name(cfg_.sched)) +
                       "\" backend");
  return cfg_.sched;
}

void Engine::run(const std::function<void(Ctx&)>& rank_main) {
  const int n = world_size();
  run_sched_mode_ = resolve_sched_mode();
  // No rank contexts exist yet: a grace period for any RCU state the tool
  // layer retired during the previous run.
  if (quiescent_hook_) quiescent_hook_();
  if (run_begin_hook_) run_begin_hook_();
  abort_.store(false);
  blocked_.store(0);
  deliveries_.store(0);
  first_error_ = nullptr;
  watchdog_s_ = effective_watchdog_s();
  {
    std::lock_guard lock(fail_mutex_);
    dead_at_.assign(static_cast<std::size_t>(n), -1.0);
  }
  dead_count_.store(0);
  {
    std::lock_guard lock(revoke_mutex_);
    revoked_.clear();
  }
  revoked_count_.store(0);
  {
    std::lock_guard lock(pending_mutex_);
    pending_.assign(static_cast<std::size_t>(n), PendingOp{});
  }
  if (cfg_.fault_plan) cfg_.fault_plan->begin_run(n);
  for (auto& st : ranks_) {
    std::lock_guard lock(st->mutex);
    st->inbox.clear();
  }
  {
    std::lock_guard lock(tool_objects_mutex_);
    tool_objects_.clear();
  }
  ++run_count_;
  {
    std::lock_guard lock(sched_.mx);
    sched_.entries.assign(static_cast<std::size_t>(n), Sched::Entry{});
    if (sched_.cvs.size() != static_cast<std::size_t>(n)) {
      sched_.cvs.clear();
      for (int r = 0; r < n; ++r)
        sched_.cvs.push_back(std::make_unique<std::condition_variable>());
    }
    sched_.min_rank = 0;
  }
  link_busy_.assign(static_cast<std::size_t>(fabric().num_links()), 0.0);
  run_ctx_.assign(static_cast<std::size_t>(n), nullptr);
  alive_.store(n);
  // After the per-run resets (the critpath governor reservation interns a
  // tool object, which tool_objects_.clear() above would otherwise wipe)
  // and before any rank context exists.
  if (crit_run_begin_hook_) crit_run_begin_hook_();

  if (run_sched_mode_ == SchedMode::fibers)
    run_fibers(rank_main);
  else
    run_threads(rank_main);

  max_virtual_time_ = 0.0;
  for (double c : final_clocks_) max_virtual_time_ = std::max(max_virtual_time_, c);

  // Before the rethrow: a failed run still gets its exporters finalized, so
  // everything flushed up to the failure survives in the output. The
  // critpath end hook runs first so the streaming plane's finalize can fold
  // finished blame results into its findings.
  if (crit_run_end_hook_) crit_run_end_hook_();
  if (run_end_hook_) run_end_hook_();

  if (first_error_) std::rethrow_exception(first_error_);
}

void Engine::rank_body(int r, const std::function<void(Ctx&)>& rank_main) {
  Ctx ctx(this, r);
  ctx.noise_rng_.reseed(cfg_.noise_seed * 0x9e3779b97f4a7c15ULL +
                        static_cast<std::uint64_t>(r) * 0x100000001b3ULL +
                        run_count_);
  if (epoch_hook_ && epoch_period_s_ > 0.0)
    ctx.next_epoch_s_ = epoch_period_s_;
  run_ctx_[static_cast<std::size_t>(r)] = &ctx;
  g_running_ctx = &ctx;
  try {
    rank_main(ctx);
    clear_pending(r, PendingOp::What::exited);
  } catch (const RankCrashExit& crash) {
    // A fault-plan crash kills this rank, not the run: peers observe a
    // dead rank and either degrade (ErrMode::ret, failure-aware tool
    // gathers) or fail with a typed RankFailedError.
    mark_dead(r, crash.crash_time_s);
  } catch (const AbortError&) {
    // Another rank failed first; its error is already recorded.
  } catch (...) {
    record_error(std::current_exception());
    abort_all();
  }
  g_running_ctx = nullptr;
  final_clocks_[static_cast<std::size_t>(r)] = ctx.now();
  // Final epoch flush on the rank's own context, for every exit path --
  // including a fault-plan crash, so the streaming plane keeps a
  // crashed rank's last partial epoch (exporter teardown ordering).
  if (epoch_hook_ && epoch_period_s_ > 0.0)
    epoch_hook_(r, ctx.now(), /*final_flush=*/true);
  if (cfg_.nic_contention) {
    std::lock_guard lock(sched_.mx);
    sched_update_locked(r, Sched::St::done, ctx.now());
  }
  run_ctx_[static_cast<std::size_t>(r)] = nullptr;
  alive_.fetch_sub(1);
  if (fiber_ != nullptr) {
    // A rank exiting can turn the remaining blocked fibers into a
    // structural deadlock; the scheduler notices that instantly once this
    // fiber returns, so no broadcast is needed (and an O(n) notify per
    // exit would make teardown O(n^2) at np=4096).
    return;
  }
  // A rank exiting can turn the remaining blocked ranks into a
  // deadlock; wake them so the watchdog can notice.
  for (auto& st : ranks_) st->cv.notify_all();
}

void Engine::run_threads(const std::function<void(Ctx&)>& rank_main) {
  const int n = world_size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    threads.emplace_back([this, r, &rank_main] { rank_body(r, rank_main); });
  for (auto& t : threads) t.join();
}

void Engine::run_fibers(const std::function<void(Ctx&)>& rank_main) {
  // One OS thread drives every rank; the scheduler repoints the
  // current-context pointer at each switch so Ctx::current() and every
  // per-rank hook consumer (telemetry shards, obsplane rings, critpath
  // lanes) see the rank that is actually executing.
  fiber_ = std::make_unique<FiberSched>(
      world_size(), cfg_.fiber_stack_bytes,
      [this](int r) { g_running_ctx = r >= 0 ? run_ctx_[static_cast<std::size_t>(r)] : nullptr; });
  fiber_->run(
      [this, &rank_main](int r) { rank_body(r, rank_main); },
      [this](int reporter) {
        // Structural deadlock: no fiber is ready, none waits on wall time,
        // and not all are done. In thread mode the watchdog would need a
        // wall timeout to conclude this; here it is a certainty the moment
        // the ready queue drains.
        if (abort_.load()) return;
        const std::string report = deadlock_report(reporter);
        telemetry::log(telemetry::LogLevel::error, reporter, "engine",
                       report);
        record_error(std::make_exception_ptr(DeadlockError(report)));
        abort_all();
      });
  fiber_.reset();
}

// ---------------------------------------------------------------------------
// Ctx

Ctx& Ctx::current() {
  check(g_running_ctx != nullptr,
        "Ctx::current() called outside an Engine::run rank context");
  return *g_running_ctx;
}

void Ctx::advance(double seconds) {
  check(seconds >= 0.0, "cannot advance the clock backwards");
  fault::FaultPlan* plan = engine_->cfg_.fault_plan.get();
  if (plan != nullptr) seconds *= plan->slowdown(world_rank_);
  clock_ += seconds;
  fault_check();
  epoch_check();
}

void Ctx::epoch_cross() {
  const double period = engine_->epoch_period_s_;
  if (!(period > 0.0)) {
    next_epoch_s_ = std::numeric_limits<double>::infinity();
    return;
  }
  // Fire before re-arming: the hook sees the clock that crossed, and the
  // next boundary is the start of the epoch after the one the clock is in.
  engine_->epoch_hook_(world_rank_, clock_, /*final_flush=*/false);
  next_epoch_s_ = (std::floor(clock_ / period) + 1.0) * period;
}

void Ctx::compute_flops(double flops) {
  check(flops >= 0.0, "negative flop count");
  advance(flops * engine_->cfg_.flop_time_s);
}

void Ctx::fault_check() {
  fault::FaultPlan* plan = engine_->cfg_.fault_plan.get();
  if (plan == nullptr) return;
  double stall_virtual = 0.0;
  double stall_wall = 0.0;
  if (plan->take_stall(world_rank_, clock_, &stall_virtual, &stall_wall)) {
    engine_->hub_.add(engine_->hub_.ids().fault_stalls, world_rank_);
    clock_ += stall_virtual;
    if (stall_wall > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(stall_wall));
  }
  const double crash = plan->crash_at(world_rank_);
  if (clock_ >= crash) {
    clock_ = crash;
    throw RankCrashExit{crash};
  }
}

void Ctx::raise_peer_dead(int peer_world, const Comm& comm, int tag,
                          const char* op) {
  const double when = engine_->dead_time(peer_world);
  clock_ = std::max(clock_, when);
  RankFailedError err(
      peer_world, when,
      "rank " + std::to_string(peer_world) + " crashed at t=" +
          std::to_string(when) + "s while rank " +
          std::to_string(world_rank_) + " was in " + op + "(peer=" +
          std::to_string(peer_world) + ", tag=" + std::to_string(tag) +
          ", comm=" + std::to_string(comm.context_id()) + ")");
  if (engine_->errmode(comm) == ErrMode::fatal)
    engine_->fail_run(std::make_exception_ptr(err));
  throw err;
}

void Ctx::raise_revoked(const Comm& comm, const char* op) {
  CommRevokedError err(
      comm.context_id(),
      "communicator " + std::to_string(comm.context_id()) +
          " was revoked while rank " + std::to_string(world_rank_) +
          " was in " + op);
  if (engine_->errmode(comm) == ErrMode::fatal)
    engine_->fail_run(std::make_exception_ptr(err));
  throw err;
}

int Ctx::ack_failures(const Comm& comm) {
  check(!comm.is_null(), "failure_ack on null communicator");
  auto& acked = ft_acked_[comm.context_id()];
  acked.resize(static_cast<std::size_t>(comm.size()), 0);
  int n = 0;
  for (int g = 0; g < comm.size(); ++g) {
    auto& slot = acked[static_cast<std::size_t>(g)];
    if (slot == 0 && engine_->rank_dead(comm.world_rank_of(g))) slot = 1;
    if (slot != 0) ++n;
  }
  return n;
}

std::vector<int> Ctx::acked_failures(const Comm& comm) const {
  check(!comm.is_null(), "get_failed on null communicator");
  std::vector<int> out;
  auto it = ft_acked_.find(comm.context_id());
  if (it == ft_acked_.end()) return out;
  for (std::size_t g = 0; g < it->second.size(); ++g)
    if (it->second[g] != 0) out.push_back(static_cast<int>(g));
  return out;
}

bool Ctx::failure_acked(const Comm& comm, int world_rank) const {
  auto it = ft_acked_.find(comm.context_id());
  if (it == ft_acked_.end()) return false;
  const int g = comm.group_rank_of_world(world_rank);
  return g >= 0 && static_cast<std::size_t>(g) < it->second.size() &&
         it->second[static_cast<std::size_t>(g)] != 0;
}

void Ctx::ack_failure_bitmap(const Comm& comm,
                             const std::vector<std::uint8_t>& dead_by_group) {
  check(dead_by_group.size() == static_cast<std::size_t>(comm.size()),
        "failure bitmap size mismatch");
  auto& acked = ft_acked_[comm.context_id()];
  acked.resize(static_cast<std::size_t>(comm.size()), 0);
  for (std::size_t g = 0; g < dead_by_group.size(); ++g)
    if (dead_by_group[g] != 0) acked[g] = 1;
}

void Ctx::observe_rank_failure(int world_rank) {
  const double when = engine_->dead_time(world_rank);
  if (when >= 0.0) clock_ = std::max(clock_, when);
}

std::uint32_t Ctx::next_coll_seq(const Comm& comm) {
  return coll_seq_[comm.context_id()]++;
}

std::uint32_t Ctx::next_mgmt_seq(const Comm& comm) {
  return mgmt_seq_[comm.context_id()]++;
}

void Ctx::send_bytes(int dst_world, const Comm& comm, int tag, CommKind kind,
                     const void* buf, std::size_t bytes) {
  if (engine_->abort_.load(std::memory_order_relaxed)) throw AbortError();
  check(!comm.is_null(), "send on null communicator");
  check(comm.contains_world(world_rank_), "sender not in communicator");
  check(comm.contains_world(dst_world), "destination not in communicator");
  fault_check();
  if (kind != CommKind::tool && engine_->comm_revoked(comm))
    raise_revoked(comm, "send");
  // Acked-dead short-circuit (ULFM failure_ack): once this rank has
  // acknowledged the peer's death, sending to it is an immediate typed
  // failure instead of silent fire-and-forget. Unacked death deliberately
  // does NOT divert the send -- whether the engine has marked a crash yet
  // is wall-clock racy, and send costs must stay a pure function of
  // virtual time. Tool-kind traffic is exempt: shrink/agree and the
  // monitoring gathers must keep sending to every member unconditionally.
  if (kind != CommKind::tool && !ft_acked_.empty()) {
    auto acked_it = ft_acked_.find(comm.context_id());
    if (acked_it != ft_acked_.end()) {
      const int g = comm.group_rank_of_world(dst_world);
      if (g >= 0 && static_cast<std::size_t>(g) < acked_it->second.size() &&
          acked_it->second[static_cast<std::size_t>(g)] != 0)
        raise_peer_dead(dst_world, comm, tag, "send");
    }
  }

  // Consult the fault plan before the monitoring hook so the packet record
  // carries the attempt count the wire actually saw. The virtual-time
  // charges are applied further down, where they always were; only the
  // degradation-window check sees a clock that excludes monitoring
  // overhead, a model choice (the NIC does not wait for the tool).
  fault::SendFaults faults;
  const bool have_faults = engine_->cfg_.fault_plan != nullptr;
  if (have_faults)
    faults = engine_->cfg_.fault_plan->on_send(world_rank_, dst_world, bytes,
                                               clock_);

  PktInfo info{world_rank_, dst_world, bytes,  kind,
               tag,         comm.context_id(), clock_, faults.attempts};
  // Stamped unconditionally (not just when a critpath observer is armed):
  // host-side bookkeeping, so clocks stay bit-identical either way, and
  // sequence numbers stay stable across profiler on/off runs.
  info.send_seq = ++send_seq_;
  if (kind != CommKind::tool &&
      engine_->send_hook_armed_.load(std::memory_order_acquire)) {
    const int recorded = engine_->send_hook_(info, world_rank_);
    clock_ += static_cast<double>(recorded) * engine_->cfg_.monitor_event_cost_s;
  }

  telemetry::Hub& hub = engine_->hub_;
  if (hub.enabled()) {
    const telemetry::StdIds& ids = hub.ids();
    telemetry::Registry& reg = hub.registry();
    reg.add(ids.engine_messages, world_rank_);
    reg.add(ids.engine_bytes, world_rank_, bytes);
    reg.observe(ids.engine_msg_bytes, world_rank_,
                static_cast<double>(bytes));
    if (have_faults) {
      const auto extra = static_cast<std::uint64_t>(faults.attempts - 1);
      if (extra > 0) {
        reg.add(ids.fault_retransmits, world_rank_, extra);
        reg.add(ids.fault_drops, world_rank_, extra);
        reg.add(ids.fault_backoff_ns, world_rank_,
                static_cast<std::uint64_t>(faults.sender_extra_s * 1e9));
      }
      if (faults.lost) {
        reg.add(ids.fault_lost, world_rank_);
        reg.add(ids.fault_drops, world_rank_);
      }
    }
  }

  const auto& placement = engine_->cfg_.placement;
  const int leaf_src = placement[static_cast<std::size_t>(world_rank_)];
  const int leaf_dst = placement[static_cast<std::size_t>(dst_world)];
  const net::CostModel& cost = engine_->cfg_.cost_model;

  if (engine_->cfg_.os_noise_s > 0.0)
    clock_ += noise_rng_.uniform(0.0, engine_->cfg_.os_noise_s);

  // Hockney with a busy sender: the sender pays the serialization time
  // bytes/beta (it cannot inject two messages at once), the wire adds the
  // latency alpha on top.
  double tx = cost.serialization_time(leaf_src, leaf_dst, bytes);
  double alpha = cost.latency(leaf_src, leaf_dst);
  const bool crosses = cost.crosses_network(leaf_src, leaf_dst);

  bool lost = false;
  if (have_faults) {
    // The sender pays each failed attempt's serialization plus the
    // retransmit backoffs; the delivered copy carries the jitter and the
    // degraded bandwidth of the window it was sent in.
    tx *= faults.tx_scale;
    clock_ +=
        faults.sender_extra_s + static_cast<double>(faults.attempts - 1) * tx;
    alpha += faults.latency_extra_s;
    lost = faults.lost;
  }
  if (lost) {
    // Every retransmission was dropped: the final attempt leaves the NIC
    // but never arrives anywhere.
    if (engine_->cfg_.enable_nic_counters && crosses)
      engine_->nic_.record_tx(engine_->fabric().node_of(leaf_src), clock_,
                              bytes);
    const double lost_tx_start = clock_;
    clock_ += tx + cost.send_overhead();
    if (kind != CommKind::tool &&
        engine_->crit_armed_.load(std::memory_order_acquire) &&
        engine_->crit_hooks_.on_send)
      engine_->crit_hooks_.on_send(world_rank_, info, info.send_time_s,
                                   lost_tx_start, /*arrival=*/-1.0, clock_);
    epoch_check();
    return;
  }

  double tx_start = clock_;
  double arrival;
  if (engine_->cfg_.nic_contention && crosses) {
    arrival = contended_transfer(leaf_src, leaf_dst, tx, alpha, &tx_start);
  } else {
    arrival = clock_ + tx + alpha;
  }

  Engine::InFlight msg;
  msg.info = info;
  msg.arrival_s = arrival;
  if (buf != nullptr && bytes > 0) {
    msg.payload = std::make_unique<std::byte[]>(bytes);
    std::memcpy(msg.payload.get(), buf, bytes);
  }

  if (engine_->cfg_.enable_nic_counters && crosses) {
    engine_->nic_.record_tx(engine_->fabric().node_of(leaf_src), tx_start,
                            bytes);
  }

  engine_->deliver(std::move(msg));
  clock_ = tx_start + tx + cost.send_overhead();
  if (kind != CommKind::tool &&
      engine_->crit_armed_.load(std::memory_order_acquire) &&
      engine_->crit_hooks_.on_send)
    engine_->crit_hooks_.on_send(world_rank_, info, info.send_time_s, tx_start,
                                 arrival, clock_);
  epoch_check();
}

void Ctx::rma_transfer(int from_world, int to_world, const Comm& comm,
                       std::size_t bytes) {
  if (engine_->abort_.load(std::memory_order_relaxed)) throw AbortError();
  check(comm.contains_world(from_world) && comm.contains_world(to_world),
        "RMA endpoint not in the window communicator");
  fault_check();

  PktInfo info{from_world, to_world, bytes, CommKind::osc, 0,
               comm.context_id(), clock_};
  if (engine_->send_hook_armed_.load(std::memory_order_acquire)) {
    const int recorded = engine_->send_hook_(info, world_rank_);
    clock_ +=
        static_cast<double>(recorded) * engine_->cfg_.monitor_event_cost_s;
  }
  if (engine_->hub_.enabled()) {
    const telemetry::StdIds& ids = engine_->hub_.ids();
    engine_->hub_.registry().add(ids.engine_messages, from_world);
    engine_->hub_.registry().add(ids.engine_bytes, from_world, bytes);
  }

  const auto& placement = engine_->cfg_.placement;
  const int leaf_from = placement[static_cast<std::size_t>(from_world)];
  const int leaf_to = placement[static_cast<std::size_t>(to_world)];
  const net::CostModel& cost = engine_->cfg_.cost_model;
  const bool crosses = cost.crosses_network(leaf_from, leaf_to);
  const double tx = cost.serialization_time(leaf_from, leaf_to, bytes);
  const double alpha = cost.latency(leaf_from, leaf_to);
  double tx_start = clock_;
  if (engine_->cfg_.nic_contention && crosses) {
    clock_ = contended_transfer(leaf_from, leaf_to, tx, alpha, &tx_start);
  } else {
    clock_ += tx + alpha;
  }
  if (engine_->cfg_.enable_nic_counters && crosses) {
    engine_->nic_.record_tx(engine_->fabric().node_of(leaf_from), tx_start,
                            bytes);
  }
  epoch_check();
}

double Ctx::contended_transfer(int leaf_src, int leaf_dst, double tx_s,
                               double alpha_s, double* tx_start) {
  using namespace std::chrono_literals;
  Engine::Sched& sched = engine_->sched_;
  const int me = world_rank_;
  std::unique_lock lock(sched.mx);
  engine_->sched_update_locked(me, Engine::Sched::St::gate, clock_);
  while (sched.min_rank != me) {
    if (engine_->abort_.load()) {
      engine_->sched_update_locked(me, Engine::Sched::St::done, clock_);
      throw AbortError();
    }
    if (engine_->fiber_ != nullptr) {
      // Gate yield: sched_update_locked wakes exactly the new min-clock
      // rank, so we resume only when we hold (or may hold) the gate and
      // re-check under the lock.
      lock.unlock();
      engine_->fiber_->block(clock_);
      lock.lock();
      continue;
    }
    sched.cvs[static_cast<std::size_t>(me)]->wait_for(lock, 200ms);
  }
  // This rank now holds the earliest possible send time: reserve every
  // link of the route in virtual-time order (deterministic by
  // construction). Cut-through per hop: the head of the message reaches
  // link i after the preceding gap latency, waits for the link to free,
  // and the message is fully received once it has drained end to end. On
  // a tree fabric the route is [tx port, rx port] with the whole path
  // latency as the single gap -- the historical two-port reservation,
  // bit for bit. Links drain at their wire rate, which may exceed one
  // flow's end-to-end rate (drain_frac, EngineConfig::nic_port_beta_scale).
  net::RoutePlan plan;
  engine_->cfg_.cost_model.route_plan(leaf_src, leaf_dst, alpha_s, &plan);
  const double port_scale = std::max(1.0, engine_->cfg_.nic_port_beta_scale);
  double stage = std::max(clock_, engine_->link_busy_[static_cast<std::size_t>(
                                      plan.links[0])]);
  const double start = stage;
  engine_->link_busy_[static_cast<std::size_t>(plan.links[0])] =
      stage + tx_s * plan.drain_frac[0] / port_scale;
  for (int i = 1; i < plan.n; ++i) {
    stage = std::max(
        stage + plan.gap_alpha_s[i],
        engine_->link_busy_[static_cast<std::size_t>(plan.links[i])]);
    engine_->link_busy_[static_cast<std::size_t>(plan.links[i])] =
        stage + tx_s * plan.drain_frac[i] / port_scale;
  }
  const double arrival = stage + tx_s;

  engine_->sched_update_locked(me, Engine::Sched::St::running,
                               start + tx_s);
  *tx_start = start;
  return arrival;
}

namespace {

bool pkt_matches(const PktInfo& info, int src_world, int context_id, int tag,
                 CommKind kind) {
  if (info.context_id != context_id) return false;
  if (info.kind != kind) return false;
  if (tag != kAnyTag && info.tag != tag) return false;
  if (src_world != kAnySource && info.src_world != src_world) return false;
  return true;
}

}  // namespace

bool Ctx::match_and_complete(int src_world, const Comm& comm, int tag,
                             CommKind kind, void* buf, std::size_t capacity,
                             Status* status, bool /*consume_clock*/) {
  // Caller holds the rank mutex.
  auto& inbox = engine_->rank_state(world_rank_).inbox;
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    if (!pkt_matches(it->info, src_world, comm.context_id(), tag, kind))
      continue;
    check(it->info.bytes <= capacity || buf == nullptr,
          "receive buffer too small (message truncated)");
    if (buf != nullptr && it->payload != nullptr)
      std::memcpy(buf, it->payload.get(),
                  std::min(capacity, it->info.bytes));
    const double completion =
        std::max(clock_, it->arrival_s) + engine_->cfg_.recv_overhead_s;
    // Critpath observation before the clock assignment so the hook sees
    // the pre-completion clock (the wait baseline). Runs under the rank
    // mutex: the hook must be lock-free and never charge virtual time.
    if (it->info.kind != CommKind::tool &&
        engine_->crit_armed_.load(std::memory_order_acquire) &&
        engine_->crit_hooks_.on_recv)
      engine_->crit_hooks_.on_recv(world_rank_, it->info, clock_,
                                   it->arrival_s, completion);
    clock_ = completion;
    if (status != nullptr)
      *status = Status{it->info.src_world, it->info.tag, it->info.bytes};
    telemetry::Hub& hub = engine_->hub_;
    if (hub.enabled()) {
      const telemetry::StdIds& ids = hub.ids();
      hub.registry().observe(ids.engine_match_s, world_rank_,
                             completion - it->arrival_s);
      hub.registry().gauge_add(ids.engine_bytes_in_flight, world_rank_,
                               -static_cast<std::int64_t>(it->info.bytes));
    }
    inbox.erase(it);
    return true;
  }
  return false;
}

namespace {

/// Keeps Engine::blocked_ balanced on every exit path, including typed
/// failures thrown out of the wait predicate.
struct BlockedGuard {
  std::atomic<int>& counter;
  explicit BlockedGuard(std::atomic<int>& c) : counter(c) {
    counter.fetch_add(1);
  }
  ~BlockedGuard() { counter.fetch_sub(1); }
};

}  // namespace

template <typename Pred>
void Ctx::wait_on_inbox(std::unique_lock<std::mutex>& lock, Pred&& ready) {
  using namespace std::chrono_literals;
  auto& st = engine_->rank_state(world_rank_);
  BlockedGuard blocked_guard(engine_->blocked_);
  // Blocked ranks cannot issue sends; exclude us from the min-clock gate
  // so earlier senders are not stalled (we will resume with a clock at
  // least as large as the send that wakes us). The guard re-registers us
  // on every exit path, including teardown.
  struct SchedBlockGuard {
    Ctx* ctx;
    explicit SchedBlockGuard(Ctx* c) : ctx(c) {
      if (!enabled()) return;
      std::lock_guard sched_lock(ctx->engine_->sched_.mx);
      ctx->engine_->sched_update_locked(
          ctx->world_rank_, Engine::Sched::St::blocked, ctx->clock_);
    }
    ~SchedBlockGuard() {
      if (!enabled()) return;
      std::lock_guard sched_lock(ctx->engine_->sched_.mx);
      ctx->engine_->sched_update_locked(
          ctx->world_rank_, Engine::Sched::St::running, ctx->clock_);
    }
    bool enabled() const { return ctx->engine_->cfg_.nic_contention; }
  } sched_guard(this);
  std::uint64_t last_progress = engine_->deliveries_.load();
  double waited_s = 0.0;
  while (!ready()) {
    if (engine_->cfg_.nic_contention) {
      // Nothing in the inbox matches: any `pending` bound a delivery set
      // can be dropped, we will not wake from it. (Serialized against
      // deliver() by the rank mutex held here.)
      std::lock_guard sched_lock(engine_->sched_.mx);
      auto& entry =
          engine_->sched_.entries[static_cast<std::size_t>(world_rank_)];
      if (entry.st == Engine::Sched::St::pending)
        engine_->sched_update_locked(world_rank_, Engine::Sched::St::blocked,
                                     clock_);
    }
    if (engine_->abort_.load()) throw AbortError();
    if (engine_->fiber_ != nullptr) {
      // Cooperative yield: the predicate just failed under the rank mutex,
      // and nothing else can run until block() switches to the scheduler,
      // so no wakeup can be lost between the check and the switch. The
      // wall-clock watchdog below is unnecessary here -- a true deadlock
      // empties the scheduler's ready queue and is reported instantly.
      lock.unlock();
      engine_->fiber_->block(clock_);
      lock.lock();
      continue;
    }
    if (st.cv.wait_for(lock, 200ms) == std::cv_status::timeout) {
      waited_s += 0.2;
      const std::uint64_t progress = engine_->deliveries_.load();
      if (progress != last_progress) {
        last_progress = progress;
        waited_s = 0.0;
      } else if (waited_s >= engine_->watchdog_s_ &&
                 engine_->blocked_.load() >= engine_->alive_.load()) {
        const std::string report = engine_->deadlock_report(world_rank_);
        telemetry::log(telemetry::LogLevel::error, world_rank_, "engine",
                       report);
        engine_->record_error(
            std::make_exception_ptr(DeadlockError(report)));
        engine_->abort_all();
        throw AbortError();
      }
    }
  }
}

namespace {

/// Registers the blocked operation for the structured deadlock report and
/// clears it on every exit path.
struct PendingGuard {
  Engine* engine;
  int rank;
  PendingGuard(Engine* e, int r, const Engine::PendingOp& op)
      : engine(e), rank(r) {
    engine->set_pending(rank, op);
  }
  ~PendingGuard() { engine->clear_pending(rank); }
};

}  // namespace

Status Ctx::recv_bytes(int src_world, const Comm& comm, int tag, CommKind kind,
                       void* buf, std::size_t capacity) {
  check(!comm.is_null(), "recv on null communicator");
  check(comm.contains_world(world_rank_), "receiver not in communicator");
  fault_check();
  auto& st = engine_->rank_state(world_rank_);
  Status status;
  std::unique_lock lock(st.mutex);
  if (match_and_complete(src_world, comm, tag, kind, buf, capacity, &status,
                         true)) {
    lock.unlock();
    fault_check();
    epoch_check();
    return status;
  }
  if (src_world != kAnySource && engine_->rank_dead(src_world))
    raise_peer_dead(src_world, comm, tag);
  if (kind != CommKind::tool && engine_->comm_revoked(comm))
    raise_revoked(comm, "recv");
  const Engine::PendingOp op{Engine::PendingOp::What::recv, src_world, tag,
                             kind, comm.context_id(), clock_};
  PendingGuard pending_guard(engine_, world_rank_, op);
  bool done = false;
  wait_on_inbox(lock, [&] {
    done = match_and_complete(src_world, comm, tag, kind, buf, capacity,
                              &status, true);
    if (!done && src_world != kAnySource && engine_->rank_dead(src_world))
      raise_peer_dead(src_world, comm, tag);
    if (!done && kind != CommKind::tool && engine_->comm_revoked(comm))
      raise_revoked(comm, "recv");
    return done;
  });
  lock.unlock();
  fault_check();
  epoch_check();
  return status;
}

Ctx::RecvWait Ctx::recv_bytes_wait(int src_world, const Comm& comm, int tag,
                                   CommKind kind, void* buf,
                                   std::size_t capacity, Status* status,
                                   double wall_timeout_s) {
  using namespace std::chrono_literals;
  check(!comm.is_null(), "recv on null communicator");
  check(comm.contains_world(world_rank_), "receiver not in communicator");
  check(wall_timeout_s >= 0.0, "negative receive timeout");
  fault_check();
  auto& st = engine_->rank_state(world_rank_);
  std::unique_lock lock(st.mutex);
  if (match_and_complete(src_world, comm, tag, kind, buf, capacity, status,
                         true))
    return RecvWait::ok;
  const Engine::PendingOp op{Engine::PendingOp::What::recv, src_world, tag,
                             kind, comm.context_id(), clock_};
  PendingGuard pending_guard(engine_, world_rank_, op);
  // Deliberately NOT counted in Engine::blocked_: a timed wait always makes
  // progress eventually, so it must not let a peer's watchdog declare a
  // deadlock while we are merely waiting out the timeout.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(wall_timeout_s));
  while (true) {
    if (match_and_complete(src_world, comm, tag, kind, buf, capacity, status,
                           true))
      return RecvWait::ok;
    if (src_world != kAnySource && engine_->rank_dead(src_world)) {
      // The peer can never contribute: complete at its crash time so the
      // degraded result still has a deterministic virtual clock.
      clock_ = std::max(clock_, engine_->dead_time(src_world));
      return RecvWait::peer_dead;
    }
    if (kind != CommKind::tool && engine_->comm_revoked(comm))
      raise_revoked(comm, "recv_wait");
    if (engine_->abort_.load()) throw AbortError();
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return RecvWait::timeout;
    if (engine_->fiber_ != nullptr) {
      // Timed cooperative yield: a delivery, crash, revoke or abort wakes
      // us via FiberSched::wake; otherwise the scheduler hands the core
      // back once the wall deadline passes and we report the timeout.
      lock.unlock();
      engine_->fiber_->block_until(clock_, deadline);
      lock.lock();
      continue;
    }
    st.cv.wait_until(lock, std::min(deadline, now + 200ms));
  }
}

bool Ctx::try_recv_bytes(int src_world, const Comm& comm, int tag,
                         CommKind kind, void* buf, std::size_t capacity,
                         Status* status) {
  check(!comm.is_null(), "recv on null communicator");
  if (engine_->abort_.load(std::memory_order_relaxed)) throw AbortError();
  fault_check();
  auto& st = engine_->rank_state(world_rank_);
  std::unique_lock lock(st.mutex);
  return match_and_complete(src_world, comm, tag, kind, buf, capacity, status,
                            true);
}

bool Ctx::iprobe_bytes(int src_world, const Comm& comm, int tag, CommKind kind,
                       Status* status) {
  check(!comm.is_null(), "probe on null communicator");
  if (engine_->abort_.load(std::memory_order_relaxed)) throw AbortError();
  auto& st = engine_->rank_state(world_rank_);
  std::unique_lock lock(st.mutex);
  for (const auto& msg : st.inbox) {
    if (pkt_matches(msg.info, src_world, comm.context_id(), tag, kind)) {
      if (status != nullptr)
        *status = Status{msg.info.src_world, msg.info.tag, msg.info.bytes};
      return true;
    }
  }
  return false;
}

}  // namespace mpim::mpi
