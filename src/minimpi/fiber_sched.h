// Cooperative rank scheduler: every rank runs as a stackful ucontext fiber
// of ONE OS thread, dispatched from a min-heap ready queue keyed by
// (virtual clock, rank).
//
// This is the SimGrid/SMPI execution model: instead of one OS thread per
// rank (which caps practical world size at a few hundred ranks on a small
// host -- kernel scheduling, cv ping-pong and per-thread stacks all scale
// with np), the whole world is a set of contexts of one process, switched
// cooperatively at the engine's blocking points. A single core drives
// np=1024-4096 worlds, and the switch order is a deterministic function of
// the virtual clocks, so reruns are bit-identical by construction.
//
// The scheduler knows nothing about MPI: the engine expresses every
// blocking point (inbox waits, timed receives, NIC-gate waits) through
// block()/block_until() and every wakeup (delivery, crash/revoke
// notification, gate hand-off, abort) through wake()/wake_all(). Because
// everything runs on one thread, a fiber that fails its wait predicate and
// then blocks cannot lose a wakeup -- nothing can deliver between the
// predicate check and the switch.
//
// Determinism: ready fibers are resumed in ascending (clock, rank) order,
// where `clock` is the fiber's virtual clock when it blocked (0 at start).
// A fiber runs without preemption until its next blocking point, exactly
// like a rank thread that never loses the (single) core.
//
// Deadlock: when no fiber is ready, none holds a wall-clock deadline and
// not every fiber is done, the simulated program can never make progress
// again. The engine's on_stall callback turns that into a structured
// deadlock report instantly -- no wall-clock watchdog delay.
//
// Sanitizers: switches carry the ASan fake-stack and TSan fiber
// annotations, so fiber-mode tests run under both sanitizer presets.
#pragma once

#include <ucontext.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

namespace mpim::mpi {

class FiberSched {
 public:
  /// `on_resume(rank)` runs on the scheduler thread immediately before each
  /// switch into `rank`'s fiber; the engine uses it to repoint the
  /// current-context pointer (the fiber-mode replacement for "one
  /// thread_local per rank thread").
  FiberSched(int nranks, std::size_t stack_bytes,
             std::function<void(int)> on_resume);
  ~FiberSched();

  FiberSched(const FiberSched&) = delete;
  FiberSched& operator=(const FiberSched&) = delete;

  /// Runs `body(rank)` for every rank as a fiber and returns when all have
  /// finished. `body` must not throw (the engine's rank epilogue catches
  /// everything). `on_stall(reporter)` fires when no fiber can ever run
  /// again (the structural deadlock); after it returns, every blocked
  /// fiber is woken so it can observe the abort and unwind.
  void run(const std::function<void(int)>& body,
           const std::function<void(int)>& on_stall);

  // --- called from inside a running fiber --------------------------------

  /// Rank of the fiber currently executing (-1 on the scheduler itself).
  int current_rank() const { return running_; }

  /// Yields until wake(rank) / wake_all(). `clock_s` is the rank's virtual
  /// clock, the ready-queue key for the eventual wakeup.
  void block(double clock_s);

  /// Yields until woken or until the wall deadline passes, whichever comes
  /// first. The caller re-checks its predicate and its deadline either way.
  void block_until(double clock_s,
                   std::chrono::steady_clock::time_point deadline);

  // --- called from fibers (the scheduler is single-threaded) -------------

  /// Makes a blocked or timed fiber ready; no-op for ready/running/done
  /// fibers (the running fiber re-checks its predicate before blocking, so
  /// dropping the wake is correct, not racy).
  void wake(int rank);

  /// Promotes every blocked and timed fiber (crash/revoke/abort broadcast).
  void wake_all();

 private:
  enum class St : std::uint8_t { ready, running, blocked, timed, done };

  struct Fiber {
    ucontext_t uc{};
    char* stack_lo = nullptr;    ///< usable stack bottom (above the guard)
    std::size_t stack_bytes = 0;
    St st = St::ready;
    double key = 0.0;  ///< virtual clock when the fiber last blocked
    std::chrono::steady_clock::time_point deadline{};
    std::uint64_t gen = 0;  ///< bumped per timed block; invalidates stale
                            ///< timed-queue entries
    void* fake_stack = nullptr;  ///< ASan fake-stack save slot
    void* tsan_fiber = nullptr;
  };

  static void trampoline(unsigned int self_hi, unsigned int self_lo);
  void fiber_main();
  void switch_into(int rank);
  void switch_to_main(bool dying);
  void make_ready(Fiber& f, int rank);
  /// Moves every timed fiber whose deadline has passed to the ready queue.
  void promote_expired(std::chrono::steady_clock::time_point now);
  /// Earliest live deadline among timed fibers (timed_count_ > 0 required).
  std::chrono::steady_clock::time_point earliest_deadline();
  int first_blocked() const;

  int n_ = 0;
  std::size_t stack_bytes_ = 0;
  /// One anonymous mapping holds every fiber's [guard page | stack] pair.
  /// Guards are installed with MADV_GUARD_INSTALL where the kernel has it
  /// (6.13+), which faults on access WITHOUT splitting the VMA -- the whole
  /// slab stays one mapping, so world size is not capped by
  /// vm.max_map_count (per-fiber PROT_NONE guards cost 2 VMAs each, which
  /// alone exhausts the default 65530 budget short of np=32768). Older
  /// kernels fall back to mprotect(PROT_NONE) guards transparently.
  char* slab_base_ = nullptr;
  std::size_t slab_bytes_ = 0;
  std::function<void(int)> on_resume_;
  std::function<void(int)> body_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  ucontext_t main_uc_{};
  void* main_fake_stack_ = nullptr;
  const void* main_stack_lo_ = nullptr;
  std::size_t main_stack_bytes_ = 0;
  void* main_tsan_fiber_ = nullptr;
  int running_ = -1;
  int done_ = 0;
  /// Min-heap of (virtual clock at block, rank); the dispatch order.
  using ReadyEntry = std::pair<double, int>;
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                      std::greater<ReadyEntry>>
      ready_;
  /// Lazy min-heap of (deadline, rank, gen); stale entries (gen mismatch or
  /// fiber no longer timed) are skipped on pop.
  struct TimedEntry {
    std::chrono::steady_clock::time_point deadline;
    int rank;
    std::uint64_t gen;
    bool operator>(const TimedEntry& o) const {
      return deadline > o.deadline;
    }
  };
  std::priority_queue<TimedEntry, std::vector<TimedEntry>,
                      std::greater<TimedEntry>>
      timed_;
  int timed_count_ = 0;
};

}  // namespace mpim::mpi
