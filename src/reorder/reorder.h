// Dynamic rank reordering (the paper's Section 5 / Figure 1 algorithm),
// packaged as reusable routines.
//
// compute_reordering() is the pure algorithmic core: given the monitored
// byte matrix (old-rank space), the machine and the current placement, it
// returns the array k such that -- to minimize communication -- the process
// of current rank i should take rank k[i] in the optimized communicator
// (obtained with comm_split(comm, 0, k[myrank])).
//
// reorder_ranks() is the full distributed Figure-1 step: suspend-read an
// existing monitoring session, gather at rank 0, run TreeMatch, broadcast
// k and split. monitor_and_reorder() additionally wraps the monitored
// first iteration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "minimpi/api.h"
#include "netmodel/cost_model.h"
#include "support/matrix.h"
#include "topo/topology.h"

namespace mpim::reorder {

/// Pure core: k[i] = new rank of the process currently ranked i. When a
/// cost model is supplied, the identity is returned whenever TreeMatch's
/// proposal does not lower the contention-aware modeled cost (pattern cost
/// plus NIC load bound): the current mapping is never made worse.
std::vector<int> compute_reordering(const CommMatrix& bytes,
                                    const topo::Topology& topo,
                                    const topo::Placement& placement,
                                    const net::CostModel* cost = nullptr);

/// The no-op reordering (k[i] = i), baseline for cost comparisons.
std::vector<int> identity_k(std::size_t n);

/// Modeled communication cost of pattern `bytes` if rank i's row were
/// executed by the process holding new rank assignment k (k = identity
/// gives the current cost). Used by tests and the ablation bench.
double reordered_cost(const CommMatrix& bytes, const std::vector<int>& k,
                      const net::CostModel& cost,
                      const topo::Placement& placement);

struct ReorderResult {
  mpi::Comm opt_comm;       ///< the optimized communicator
  std::vector<int> k;       ///< old rank -> new rank (valid on all ranks)
  /// True when the step could not trust the gathered matrix (partial data,
  /// dead ranks, or a validation failure) and fell back to the identity
  /// permutation with opt_comm == comm. In runs without a fault plan the
  /// flag is only meaningful at rank 0 (the distribution stays bitwise
  /// compatible with the fault-free protocol).
  bool fell_back = false;
  std::string fallback_reason;  ///< set where fell_back is true
};

/// Sanity checks a gathered size matrix (row-major, order n) before it is
/// fed to TreeMatch: rejects null/empty matrices, rows of missing
/// contributors (MPI_M_DATA_MISSING sentinels) and implausibly large byte
/// counts. Returns false and fills `reason` on the first violation.
bool validate_gathered_matrix(const unsigned long* flat, std::size_t n,
                              std::string* reason);

/// Distributed Figure-1 step on an *already monitored, suspended* session:
/// rank 0 gathers the size matrix, computes k with TreeMatch, broadcasts it
/// and every rank splits. Collective over `comm`. `msid` must identify a
/// suspended session attached to `comm`.
///
/// Failure awareness: a gather returning MPI_M_PARTIAL_DATA, a dead member
/// rank or an invalid matrix makes every rank fall back to the identity
/// permutation (opt_comm = comm, no split) with the reason logged to
/// stderr at rank 0 -- the step degrades instead of hanging or aborting.
ReorderResult reorder_ranks(int msid, const mpi::Comm& comm);

/// Phase-triggered reordering hook, meant to be called between computation
/// chunks of an *active* session carrying a running snapshot
/// (MPI_M_snapshot_start): suspends the session, reads each rank's phase-
/// boundary count from the snapshot detector and agrees on the maximum
/// across the communicator. When that maximum exceeds `*seen_boundaries`
/// (caller-owned state, initialize to 0) the full reorder_ranks() step runs
/// on the traffic monitored so far and `*seen_boundaries` is advanced;
/// otherwise the result is the identity over `comm`, with no TreeMatch run.
/// The session is resumed before returning either way. Collective over
/// `comm`; `triggered` (optional) reports whether reordering ran. Under a
/// fault plan the agreement degrades like the other steps: unreachable
/// ranks count as "no new phase" instead of hanging the step, and
/// reorder_ranks keeps its identity fallback.
ReorderResult reorder_on_phase(int msid, const mpi::Comm& comm,
                               int* seen_boundaries,
                               bool* triggered = nullptr);

/// Extra triggers for reorder_on_phase.
struct PhaseReorderOptions {
  /// Also consult the critical-path profiler (critpath::Profiler attached
  /// to the engine): reorder when the wait blamed on *cross-node* messages
  /// (the topology-mismatch share) dominates the total classified wait
  /// accumulated since the last firing -- 2 * mismatch > wait with
  /// wait > min_wait_ns, agreed across `comm` with a tool-class allreduce.
  /// The agreement traffic runs whether or not a profiler is attached
  /// (zeros without one), so virtual clocks are bit-identical profiler on
  /// or off. Ignored under a fault plan (the extra collective would hang
  /// on dead ranks; the boundary trigger already degrades gracefully).
  bool use_critpath_mismatch = false;
  /// Wait floor (virtual ns, summed over `comm`) below which the mismatch
  /// trigger never fires.
  std::uint64_t min_wait_ns = 1000;
};

/// reorder_on_phase with extra triggers. Fires on a new phase boundary OR
/// on critpath mismatch dominance (see PhaseReorderOptions); after any
/// firing every rank's critpath mark is advanced so the next window starts
/// clean.
ReorderResult reorder_on_phase(int msid, const mpi::Comm& comm,
                               int* seen_boundaries, bool* triggered,
                               const PhaseReorderOptions& opts);

/// Convenience: runs `monitored_step` under a fresh session (the paper's
/// "first iteration"), then performs the reordering step above.
ReorderResult monitor_and_reorder(
    const mpi::Comm& comm, const std::function<void(const mpi::Comm&)>& monitored_step);

}  // namespace mpim::reorder
