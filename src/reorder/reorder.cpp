#include "reorder/reorder.h"

#include <algorithm>
#include <chrono>
#include <ctime>

#include "critpath/critpath.h"
#include "minimpi/coll.h"
#include "minimpi/engine.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "support/error.h"
#include "telemetry/hub.h"
#include "telemetry/log.h"
#include "treematch/treematch.h"

namespace mpim::reorder {

namespace {

/// CPU time consumed by the calling thread (seconds).
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

std::vector<int> compute_reordering(const CommMatrix& bytes,
                                    const topo::Topology& topo,
                                    const topo::Placement& placement,
                                    const net::CostModel* cost) {
  const std::size_t n = bytes.rows();
  check(bytes.cols() == n, "communication matrix must be square");
  check(placement.size() == n, "placement size mismatch");

  // Slot s is the processing unit of the process currently ranked s.
  // TreeMatch assigns each *role* (a row of the matrix: what old rank j
  // does) to a slot; the process owning that slot must take over the role,
  // i.e. new_rank(process s[j]) = j.
  const std::vector<int> role_to_slot =
      tm::treematch_slots(bytes, topo, placement);
  std::vector<int> k(n, -1);
  for (std::size_t role = 0; role < n; ++role) {
    const auto slot = static_cast<std::size_t>(role_to_slot[role]);
    check(k[slot] == -1, "treematch produced a non-injective slot map");
    k[slot] = static_cast<int>(role);
  }
  if (cost != nullptr) {
    // Keep the current mapping when the proposal does not actually lower
    // the modeled (contention-aware) cost -- an already well-placed job
    // must not be churned by a heuristic local optimum.
    // On routed fabrics the per-port bound cannot see which flows share a
    // trunk or global link, so the max-min fair flow bound joins the
    // decision; on the balanced tree it is skipped, keeping pre-fabric
    // decisions bit-identical.
    const bool routed = !cost->fabric().single_class_paths();
    auto decision_cost = [&](const std::vector<int>& perm) {
      topo::Placement effective(n);
      for (std::size_t p = 0; p < n; ++p)
        effective[static_cast<std::size_t>(perm[p])] = placement[p];
      double c = cost->pattern_cost(bytes, effective) +
                 cost->nic_load_cost(bytes, effective);
      if (routed) c += cost->flow_time_cost(bytes, effective);
      return c;
    };
    // 3% hysteresis: permuting every rank of a running application is not
    // free, so marginal modeled improvements are not worth acting on.
    if (decision_cost(k) >= 0.97 * decision_cost(identity_k(n)))
      return identity_k(n);
  }
  return k;
}

std::vector<int> identity_k(std::size_t n) {
  std::vector<int> k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = static_cast<int>(i);
  return k;
}

double reordered_cost(const CommMatrix& bytes, const std::vector<int>& k,
                      const net::CostModel& cost,
                      const topo::Placement& placement) {
  check(k.size() == placement.size(), "k/placement size mismatch");
  topo::Placement effective(placement.size());
  for (std::size_t p = 0; p < k.size(); ++p)
    effective[static_cast<std::size_t>(k[p])] = placement[p];
  return cost.pattern_cost(bytes, effective);
}

bool validate_gathered_matrix(const unsigned long* flat, std::size_t n,
                              std::string* reason) {
  auto fail = [&](const std::string& why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  if (flat == nullptr) return fail("gathered matrix is null");
  if (n == 0) return fail("gathered matrix is empty");
  // Anything near the sentinel cannot be a genuine byte count: a virtual
  // run moving 2^62 bytes over one monitored window is not a measurement.
  constexpr unsigned long kSaneMax = 1ul << 62;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const unsigned long v = flat[i * n + j];
      if (v == MPI_M_DATA_MISSING)
        return fail("row " + std::to_string(i) +
                    " holds the MPI_M_DATA_MISSING sentinel (contributor "
                    "crashed or timed out)");
      if (v > kSaneMax)
        return fail("entry (" + std::to_string(i) + "," + std::to_string(j) +
                    ") = " + std::to_string(v) +
                    " is implausibly large (corrupt data)");
    }
  }
  return true;
}

ReorderResult reorder_ranks(int msid, const mpi::Comm& comm) {
  mpi::Ctx& ctx = mpi::Ctx::current();
  const int n = comm.size();
  const int myrank = mpi::comm_rank(comm);
  const bool faulty = ctx.engine().config().fault_plan != nullptr;
  telemetry::Hub& hub = ctx.engine().telemetry();
  const int wrank = ctx.world_rank();

  std::vector<unsigned long> size_mat(
      myrank == 0 ? static_cast<std::size_t>(n) * static_cast<std::size_t>(n)
                  : 0);
  const double gather_t0 = ctx.now();
  const int gather_rc =
      MPI_M_rootgather_data(msid, 0, MPI_M_DATA_IGNORE,
                            myrank == 0 ? size_mat.data() : nullptr,
                            MPI_M_ALL_COMM);
  hub.span_complete(wrank, "reorder.gather", 'R', gather_t0, ctx.now(),
                    gather_rc);
  if (gather_rc != MPI_M_SUCCESS && gather_rc != MPI_M_PARTIAL_DATA)
    mon::check_rc(gather_rc, "MPI_M_rootgather_data");

  ReorderResult out;
  std::vector<int> k(static_cast<std::size_t>(n));
  if (myrank == 0) {
    std::string reason;
    if (gather_rc == MPI_M_PARTIAL_DATA) {
      out.fell_back = true;
      reason =
          "monitoring data is partial (a contributor crashed or timed out)";
    } else if (!validate_gathered_matrix(
                   size_mat.data(), static_cast<std::size_t>(n), &reason)) {
      out.fell_back = true;
    } else {
      for (int j = 0; j < n && !out.fell_back; ++j) {
        if (ctx.engine().rank_dead(comm.world_rank_of(j))) {
          out.fell_back = true;
          reason = "rank " + std::to_string(j) +
                   " of the communicator is dead";
        }
      }
    }
    if (out.fell_back) {
      out.fallback_reason = reason;
      telemetry::log(telemetry::LogLevel::warn, wrank, "reorder",
                     "falling back to identity permutation: " + reason);
      hub.add(hub.ids().reorder_identity, wrank);
      k = identity_k(static_cast<std::size_t>(n));
    } else {
      CommMatrix bytes = CommMatrix::square(static_cast<std::size_t>(n));
      std::copy(size_mat.begin(), size_mat.end(), bytes.flat().begin());

      topo::Placement placement(static_cast<std::size_t>(n));
      const auto& world_placement = ctx.engine().config().placement;
      for (int j = 0; j < n; ++j)
        placement[static_cast<std::size_t>(j)] =
            world_placement[static_cast<std::size_t>(comm.world_rank_of(j))];

      // The mapping algorithm runs on the host: charge its CPU cost to
      // rank 0's virtual clock (this is the t2 the paper's Fig. 6 and
      // Table 1 account for). Thread CPU time, not wall time: the simulator
      // oversubscribes one core with many rank threads.
      const double host0 = thread_cpu_seconds();
      const double tm_t0 = ctx.now();
      k = compute_reordering(bytes, ctx.engine().topology(), placement,
                             &ctx.engine().cost_model());
      const double tm_cpu_s = thread_cpu_seconds() - host0;
      ctx.advance(tm_cpu_s);
      hub.span_complete(wrank, "reorder.treematch", 'R', tm_t0, ctx.now(), n);
      hub.add(hub.ids().reorder_treematch_ns, wrank,
              static_cast<std::uint64_t>(tm_cpu_s * 1e9));
      hub.add(hub.ids().reorder_applied, wrank);
    }
  }

  if (!faulty) {
    // Fault-free protocol, unchanged on the wire: bcast k then split.
    const double dist_t0 = ctx.now();
    mpi::bcast(k.data(), static_cast<std::size_t>(n), mpi::Type::Int, 0,
               comm);
    hub.span_complete(wrank, "reorder.distribute", 'R', dist_t0, ctx.now());
    out.k = k;
    out.opt_comm =
        mpi::comm_split(comm, 0, k[static_cast<std::size_t>(myrank)]);
    return out;
  }

  // Failure-aware distribution: rank 0 linearly sends {fallback flag, k}
  // and everyone else receives with a timeout, so a dead rank 0 (or dead
  // receivers) cannot hang the step. One tag draw on every rank keeps the
  // alive ranks' sequence numbers aligned.
  const int tag = mpi::coll::coll_tag(ctx.next_coll_seq(comm));
  const double dist_t0 = ctx.now();
  std::vector<int> msg(static_cast<std::size_t>(n) + 1);
  if (myrank == 0) {
    msg[0] = out.fell_back ? 1 : 0;
    std::copy(k.begin(), k.end(), msg.begin() + 1);
    for (int r = 1; r < n; ++r)
      ctx.send_bytes(comm.world_rank_of(r), comm, tag, mpi::CommKind::tool,
                     msg.data(), msg.size() * sizeof(int));
  } else {
    mpi::Status st;
    const double timeout_s =
        MPI_M_get_gather_timeout() * static_cast<double>(n + 1);
    const mpi::Ctx::RecvWait rc = ctx.recv_bytes_wait(
        comm.world_rank_of(0), comm, tag, mpi::CommKind::tool, msg.data(),
        msg.size() * sizeof(int), &st, timeout_s);
    if (rc != mpi::Ctx::RecvWait::ok) {
      out.fell_back = true;
      out.fallback_reason = "rank 0 unreachable during reordering";
      telemetry::log(telemetry::LogLevel::warn, wrank, "reorder",
                     "falling back to identity permutation: " +
                         out.fallback_reason);
      hub.add(hub.ids().reorder_identity, wrank);
      msg[0] = 1;
      const std::vector<int> ident = identity_k(static_cast<std::size_t>(n));
      std::copy(ident.begin(), ident.end(), msg.begin() + 1);
    }
    out.fell_back = msg[0] != 0;
    if (out.fell_back && out.fallback_reason.empty())
      out.fallback_reason = "rank 0 fell back to the identity permutation";
    std::copy(msg.begin() + 1, msg.end(), k.begin());
  }
  hub.span_complete(wrank, "reorder.distribute", 'R', dist_t0, ctx.now());
  out.k = k;
  // On fallback the group may contain dead ranks, so a comm_split (whose
  // allgather would block on them) is not safe: keep the communicator.
  out.opt_comm =
      out.fell_back
          ? comm
          : mpi::comm_split(comm, 0, k[static_cast<std::size_t>(myrank)]);
  return out;
}

namespace {

/// Cross-rank maximum of each rank's phase-boundary count. Fault-free runs
/// use a tool-class allreduce (never monitored); under a fault plan rank 0
/// collects linearly with the monitoring gather timeout, counts
/// unreachable ranks as 0 and redistributes the decision, so a dead rank
/// suppresses triggering instead of hanging the hook.
int agree_max_boundaries(mpi::Ctx& ctx, const mpi::Comm& comm,
                         int local_boundaries) {
  const int n = comm.size();
  if (ctx.engine().config().fault_plan == nullptr) {
    int global = 0;
    mpi::coll::allreduce(ctx, &local_boundaries, &global, 1, mpi::Type::Int,
                         mpi::Op::Max, comm, mpi::CommKind::tool);
    return global;
  }
  const int myrank = mpi::comm_rank(comm);
  const double timeout_s = MPI_M_get_gather_timeout();
  const int gather_tag = mpi::coll::coll_tag(ctx.next_coll_seq(comm));
  const int redist_tag = mpi::coll::coll_tag(ctx.next_coll_seq(comm));
  if (myrank == 0) {
    int global = local_boundaries;
    for (int r = 1; r < n; ++r) {
      int theirs = 0;
      mpi::Status st;
      const mpi::Ctx::RecvWait rc = ctx.recv_bytes_wait(
          comm.world_rank_of(r), comm, gather_tag, mpi::CommKind::tool,
          &theirs, sizeof(int), &st, timeout_s);
      if (rc == mpi::Ctx::RecvWait::ok) global = std::max(global, theirs);
    }
    for (int r = 1; r < n; ++r)
      ctx.send_bytes(comm.world_rank_of(r), comm, redist_tag,
                     mpi::CommKind::tool, &global, sizeof(int));
    return global;
  }
  ctx.send_bytes(comm.world_rank_of(0), comm, gather_tag, mpi::CommKind::tool,
                 &local_boundaries, sizeof(int));
  int global = 0;
  mpi::Status st;
  const mpi::Ctx::RecvWait rc = ctx.recv_bytes_wait(
      comm.world_rank_of(0), comm, redist_tag, mpi::CommKind::tool, &global,
      sizeof(int), &st, timeout_s * static_cast<double>(n + 1));
  // Rank 0 unreachable: report no progress so nobody triggers one-sided.
  return rc == mpi::Ctx::RecvWait::ok ? global : local_boundaries;
}

}  // namespace

ReorderResult reorder_on_phase(int msid, const mpi::Comm& comm,
                               int* seen_boundaries, bool* triggered) {
  return reorder_on_phase(msid, comm, seen_boundaries, triggered,
                          PhaseReorderOptions{});
}

ReorderResult reorder_on_phase(int msid, const mpi::Comm& comm,
                               int* seen_boundaries, bool* triggered,
                               const PhaseReorderOptions& opts) {
  check(seen_boundaries != nullptr, "seen_boundaries must not be null");
  mpi::Ctx& ctx = mpi::Ctx::current();
  mon::check_rc(MPI_M_suspend(msid), "MPI_M_suspend");

  int local = 0;
  mon::check_rc(MPI_M_snapshot_info(msid, MPI_M_INT_IGNORE,
                                    MPI_M_INT_IGNORE, &local),
                "MPI_M_snapshot_info");
  const int global = agree_max_boundaries(ctx, comm, local);
  // Every alive rank sees the same `global`, so the trigger decision is
  // consistent as long as the caller-owned counters are (they start at 0
  // and only ever advance to an agreed value).
  bool fire = global > *seen_boundaries;
  if (fire) *seen_boundaries = global;

  const bool consult_critpath =
      opts.use_critpath_mismatch &&
      ctx.engine().config().fault_plan == nullptr;
  if (consult_critpath) {
    // The agreement collective runs whether or not a profiler is attached
    // (all-zero contributions without one), so the trigger option never
    // perturbs virtual clocks: profiler on and off are bit-identical.
    critpath::Profiler* prof = critpath::Profiler::attached(ctx.engine());
    const int myrank = ctx.world_rank();
    unsigned long local_ns[2] = {0, 0};
    if (prof != nullptr) {
      local_ns[0] =
          static_cast<unsigned long>(prof->mismatch_since_mark(myrank));
      local_ns[1] = static_cast<unsigned long>(prof->wait_since_mark(myrank));
    }
    unsigned long sum_ns[2] = {0, 0};
    mpi::coll::allreduce(ctx, local_ns, sum_ns, 2, mpi::Type::UnsignedLong,
                         mpi::Op::Sum, comm, mpi::CommKind::tool);
    if (!fire && sum_ns[1] > opts.min_wait_ns &&
        2 * sum_ns[0] > sum_ns[1]) {
      fire = true;
      telemetry::log(telemetry::LogLevel::info, myrank, "reorder",
                     "critpath mismatch trigger: " +
                         std::to_string(sum_ns[0]) + " of " +
                         std::to_string(sum_ns[1]) +
                         " ns waited on cross-node messages since last mark");
    }
    // Marks advance on every firing (whatever tripped it) so the next
    // window accumulates from a clean baseline on every rank.
    if (fire && prof != nullptr) prof->mark(myrank);
  }

  ReorderResult out;
  if (fire) {
    out = reorder_ranks(msid, comm);
  } else {
    out.opt_comm = comm;
    out.k = identity_k(static_cast<std::size_t>(comm.size()));
  }
  if (triggered != nullptr) *triggered = fire;
  mon::check_rc(MPI_M_continue(msid), "MPI_M_continue");
  return out;
}

ReorderResult monitor_and_reorder(
    const mpi::Comm& comm,
    const std::function<void(const mpi::Comm&)>& monitored_step) {
  MPI_M_msid id = -1;
  mon::check_rc(MPI_M_start(comm, &id), "MPI_M_start");
  monitored_step(comm);
  mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
  ReorderResult out = reorder_ranks(id, comm);
  mon::check_rc(MPI_M_free(id), "MPI_M_free");
  return out;
}

}  // namespace mpim::reorder
