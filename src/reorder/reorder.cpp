#include "reorder/reorder.h"

#include <chrono>
#include <ctime>

#include "minimpi/engine.h"
#include "mpimon/mpi_monitoring.h"
#include "mpimon/session.hpp"
#include "support/error.h"
#include "treematch/treematch.h"

namespace mpim::reorder {

namespace {

/// CPU time consumed by the calling thread (seconds).
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

std::vector<int> compute_reordering(const CommMatrix& bytes,
                                    const topo::Topology& topo,
                                    const topo::Placement& placement,
                                    const net::CostModel* cost) {
  const std::size_t n = bytes.rows();
  check(bytes.cols() == n, "communication matrix must be square");
  check(placement.size() == n, "placement size mismatch");

  // Slot s is the processing unit of the process currently ranked s.
  // TreeMatch assigns each *role* (a row of the matrix: what old rank j
  // does) to a slot; the process owning that slot must take over the role,
  // i.e. new_rank(process s[j]) = j.
  const std::vector<int> role_to_slot =
      tm::treematch_slots(bytes, topo, placement);
  std::vector<int> k(n, -1);
  for (std::size_t role = 0; role < n; ++role) {
    const auto slot = static_cast<std::size_t>(role_to_slot[role]);
    check(k[slot] == -1, "treematch produced a non-injective slot map");
    k[slot] = static_cast<int>(role);
  }
  if (cost != nullptr) {
    // Keep the current mapping when the proposal does not actually lower
    // the modeled (contention-aware) cost -- an already well-placed job
    // must not be churned by a heuristic local optimum.
    auto decision_cost = [&](const std::vector<int>& perm) {
      topo::Placement effective(n);
      for (std::size_t p = 0; p < n; ++p)
        effective[static_cast<std::size_t>(perm[p])] = placement[p];
      return cost->pattern_cost(bytes, effective) +
             cost->nic_load_cost(bytes, effective);
    };
    // 3% hysteresis: permuting every rank of a running application is not
    // free, so marginal modeled improvements are not worth acting on.
    if (decision_cost(k) >= 0.97 * decision_cost(identity_k(n)))
      return identity_k(n);
  }
  return k;
}

std::vector<int> identity_k(std::size_t n) {
  std::vector<int> k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = static_cast<int>(i);
  return k;
}

double reordered_cost(const CommMatrix& bytes, const std::vector<int>& k,
                      const net::CostModel& cost,
                      const topo::Placement& placement) {
  check(k.size() == placement.size(), "k/placement size mismatch");
  topo::Placement effective(placement.size());
  for (std::size_t p = 0; p < k.size(); ++p)
    effective[static_cast<std::size_t>(k[p])] = placement[p];
  return cost.pattern_cost(bytes, effective);
}

ReorderResult reorder_ranks(int msid, const mpi::Comm& comm) {
  mpi::Ctx& ctx = mpi::Ctx::current();
  const int n = comm.size();
  const int myrank = mpi::comm_rank(comm);

  std::vector<unsigned long> size_mat(
      myrank == 0 ? static_cast<std::size_t>(n) * static_cast<std::size_t>(n)
                  : 0);
  mon::check_rc(
      MPI_M_rootgather_data(msid, 0, MPI_M_DATA_IGNORE,
                            myrank == 0 ? size_mat.data() : nullptr,
                            MPI_M_ALL_COMM),
      "MPI_M_rootgather_data");

  std::vector<int> k(static_cast<std::size_t>(n));
  if (myrank == 0) {
    CommMatrix bytes = CommMatrix::square(static_cast<std::size_t>(n));
    std::copy(size_mat.begin(), size_mat.end(), bytes.flat().begin());

    topo::Placement placement(static_cast<std::size_t>(n));
    const auto& world_placement = ctx.engine().config().placement;
    for (int j = 0; j < n; ++j)
      placement[static_cast<std::size_t>(j)] =
          world_placement[static_cast<std::size_t>(comm.world_rank_of(j))];

    // The mapping algorithm runs on the host: charge its CPU cost to
    // rank 0's virtual clock (this is the t2 the paper's Fig. 6 and
    // Table 1 account for). Thread CPU time, not wall time: the simulator
    // oversubscribes one core with many rank threads.
    const double host0 = thread_cpu_seconds();
    k = compute_reordering(bytes, ctx.engine().topology(), placement,
                           &ctx.engine().cost_model());
    ctx.advance(thread_cpu_seconds() - host0);
  }
  mpi::bcast(k.data(), static_cast<std::size_t>(n), mpi::Type::Int, 0, comm);

  ReorderResult out;
  out.k = k;
  out.opt_comm =
      mpi::comm_split(comm, 0, k[static_cast<std::size_t>(myrank)]);
  return out;
}

ReorderResult monitor_and_reorder(
    const mpi::Comm& comm,
    const std::function<void(const mpi::Comm&)>& monitored_step) {
  MPI_M_msid id = -1;
  mon::check_rc(MPI_M_start(comm, &id), "MPI_M_start");
  monitored_step(comm);
  mon::check_rc(MPI_M_suspend(id), "MPI_M_suspend");
  ReorderResult out = reorder_ranks(id, comm);
  mon::check_rc(MPI_M_free(id), "MPI_M_free");
  return out;
}

}  // namespace mpim::reorder
