// Fixed-capacity per-rank ring buffer for trace records.
//
// Bounded memory is the point: a long run overwrites its oldest records
// instead of growing without bound (the failure mode of the post-mortem
// tracer this replaces), and the number of overwritten records is exposed
// as a drop counter so consumers know the trace is a suffix of the run.
//
// Concurrency contract: push() is only called by the owning rank's thread.
// Readers (snapshot, counters) are exact once the rank threads have been
// joined; a mid-run snapshot may miss or tear the record currently being
// overwritten, which is acceptable for monitoring reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpim::telemetry {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity), limit_(buf_.size()) {}

  std::size_t capacity() const { return buf_.size(); }

  /// Effective capacity: the backing store is never reallocated (push()
  /// runs lock-free on rank threads), but a degradation governor can lower
  /// the live-record cap at runtime. Records past the limit are treated as
  /// overwritten. Shrinking the limit mid-stream may briefly interleave
  /// stale slots into a concurrent snapshot -- acceptable for an advisory
  /// trace, and the next clear() resolves it.
  std::size_t limit() const {
    return std::min(limit_.load(std::memory_order_relaxed), buf_.size());
  }
  void set_limit(std::size_t n) {
    limit_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  void push(const T& v) {
    const std::size_t cap = limit();
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    buf_[static_cast<std::size_t>(n % cap)] = v;
    pushed_.store(n + 1, std::memory_order_release);
  }

  /// Total records ever pushed (including overwritten ones).
  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_acquire);
  }

  /// Records lost to wraparound (oldest-first overwrite policy).
  std::uint64_t dropped() const {
    const std::uint64_t n = pushed();
    return n > limit() ? n - limit() : 0;
  }

  /// Records currently held.
  std::size_t size() const {
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(pushed(), limit()));
  }

  /// Held records, oldest first.
  std::vector<T> snapshot() const {
    const std::uint64_t n = pushed();
    const std::size_t cap = limit();
    const std::size_t held = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, cap));
    std::vector<T> out;
    out.reserve(held);
    const std::uint64_t first = n - held;
    for (std::uint64_t i = first; i < n; ++i)
      out.push_back(buf_[static_cast<std::size_t>(i % cap)]);
    return out;
  }

  void clear() { pushed_.store(0, std::memory_order_release); }

 private:
  std::vector<T> buf_;
  std::atomic<std::size_t> limit_;
  std::atomic<std::uint64_t> pushed_{0};
};

}  // namespace mpim::telemetry
