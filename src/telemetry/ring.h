// Fixed-capacity per-rank ring buffer for trace records.
//
// Bounded memory is the point: a long run overwrites its oldest records
// instead of growing without bound (the failure mode of the post-mortem
// tracer this replaces), and the number of overwritten records is exposed
// as a drop counter so consumers know the trace is a suffix of the run.
//
// Concurrency contract: push() is only called by the owning rank's thread.
// Readers (snapshot, counters) are exact once the rank threads have been
// joined; a mid-run snapshot may miss or tear the record currently being
// overwritten, which is acceptable for monitoring reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpim::telemetry {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity) : buf_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return buf_.size(); }

  void push(const T& v) {
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    buf_[static_cast<std::size_t>(n % buf_.size())] = v;
    pushed_.store(n + 1, std::memory_order_release);
  }

  /// Total records ever pushed (including overwritten ones).
  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_acquire);
  }

  /// Records lost to wraparound (oldest-first overwrite policy).
  std::uint64_t dropped() const {
    const std::uint64_t n = pushed();
    return n > buf_.size() ? n - buf_.size() : 0;
  }

  /// Records currently held.
  std::size_t size() const {
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(pushed(), buf_.size()));
  }

  /// Held records, oldest first.
  std::vector<T> snapshot() const {
    const std::uint64_t n = pushed();
    const std::size_t cap = buf_.size();
    const std::size_t held = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, cap));
    std::vector<T> out;
    out.reserve(held);
    const std::uint64_t first = n - held;
    for (std::uint64_t i = first; i < n; ++i)
      out.push_back(buf_[static_cast<std::size_t>(i % cap)]);
    return out;
  }

  void clear() { pushed_.store(0, std::memory_order_release); }

 private:
  std::vector<T> buf_;
  std::atomic<std::uint64_t> pushed_{0};
};

}  // namespace mpim::telemetry
