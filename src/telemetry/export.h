// Exporters for a Hub's telemetry: Chrome trace-event JSON (loadable in
// chrome://tracing / Perfetto), per-rank CSV files, and a human summary
// table. All readers; call them after (or between) runs.
#pragma once

#include <iosfwd>
#include <string>

#include "support/table.h"
#include "telemetry/hub.h"

namespace mpim::telemetry {

/// Chrome trace-event JSON: one complete ("ph":"X") event per recorded
/// span, pid 0, tid = world rank, timestamps in microseconds of virtual
/// time. Top-level "otherData" carries the merged metric totals.
void write_chrome_trace(const Hub& hub, std::ostream& os);
void write_chrome_trace_file(const Hub& hub, const std::string& path);

/// Per-rank metrics CSV with columns metric,kind,rank,field,value.
/// Counters/gauges emit one `value` row per rank; histograms emit one
/// `le=<bound>` row per bucket (`le=inf` for overflow) plus a `count` row.
void write_metrics_csv(const Hub& hub, std::ostream& os);
void write_metrics_csv_file(const Hub& hub, const std::string& path);

/// Per-rank span CSV with columns rank,name,cat,depth,t0_s,t1_s,a,b.
void write_spans_csv(const Hub& hub, std::ostream& os);
void write_spans_csv_file(const Hub& hub, const std::string& path);

/// Human summary: one row per metric (total + busiest rank), suitable for
/// Table::print.
Table summary_table(const Hub& hub);

/// Span rollup: per span name, count / total / mean duration.
Table span_summary_table(const Hub& hub);

}  // namespace mpim::telemetry
