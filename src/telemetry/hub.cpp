#include "telemetry/hub.h"

#include <algorithm>
#include <cstring>

#include "support/error.h"

namespace mpim::telemetry {

namespace {

void copy_name(char* dst, const char* src) {
  std::size_t i = 0;
  for (; i + 1 < SpanRec::kNameCap && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

}  // namespace

Hub::Hub(int nranks, std::size_t span_capacity)
    : nranks_(nranks),
      span_capacity_(span_capacity == 0 ? 1 : span_capacity),
      span_soft_capacity_(span_capacity == 0 ? 1 : span_capacity),
      registry_(nranks),
      spans_(static_cast<std::size_t>(nranks)) {
  Registry& reg = registry_;
  // Latency buckets in virtual seconds; size buckets in bytes. The edges
  // are fixed so per-rank shards merge by plain bucket-wise addition.
  const std::vector<double> lat_bounds = {1e-7, 1e-6, 1e-5, 1e-4,
                                          1e-3, 1e-2, 1e-1};
  const std::vector<double> size_bounds = {64,      1024,      16 * 1024,
                                           262144,  4194304};
  const std::vector<double> depth_bounds = {1, 2, 4, 8, 16, 64};

  ids_.engine_messages =
      reg.define_counter("mpim_engine_messages_total", "messages sent");
  ids_.engine_bytes =
      reg.define_counter("mpim_engine_bytes_total", "payload bytes sent");
  ids_.engine_inbox_depth = reg.define_histogram(
      "mpim_engine_inbox_depth", "pending-op queue depth at delivery",
      depth_bounds);
  ids_.engine_match_s = reg.define_histogram(
      "mpim_engine_match_seconds", "arrival-to-match latency (virtual s)",
      lat_bounds);
  ids_.engine_msg_bytes = reg.define_histogram(
      "mpim_engine_message_bytes", "message payload size", size_bounds);
  ids_.engine_bytes_in_flight = reg.define_gauge(
      "mpim_engine_bytes_in_flight", "delivered but unmatched bytes");

  ids_.fault_retransmits = reg.define_counter(
      "mpim_fault_retransmits_total", "retransmit attempts (extra sends)");
  ids_.fault_drops = reg.define_counter(
      "mpim_fault_drops_total", "on-wire transmissions dropped");
  ids_.fault_lost = reg.define_counter(
      "mpim_fault_messages_lost_total",
      "messages lost after exhausting retransmits");
  ids_.fault_backoff_ns = reg.define_counter(
      "mpim_fault_backoff_ns_total", "retransmit backoff charged, virtual ns");
  ids_.fault_stalls = reg.define_counter(
      "mpim_fault_stalls_total", "rank stall faults taken");
  ids_.fault_crashes = reg.define_counter(
      "mpim_fault_crashes_total", "rank crash faults taken");

  ids_.mon_session_starts = reg.define_counter(
      "mpim_mon_session_starts_total", "MPI_M_start calls that began a session");
  ids_.mon_session_suspends = reg.define_counter(
      "mpim_mon_session_suspends_total", "monitoring session suspends");
  ids_.mon_session_resets = reg.define_counter(
      "mpim_mon_session_resets_total", "monitoring session resets");
  ids_.mon_gather_timeouts = reg.define_counter(
      "mpim_mon_gather_timeouts_total",
      "gather contributors missing after timeout");
  ids_.mon_partial_data = reg.define_counter(
      "mpim_mon_partial_data_total", "MPI_M_PARTIAL_DATA returns");
  ids_.mon_rebinds = reg.define_counter(
      "mpim_mon_rebinds_total",
      "monitoring sessions rebound onto a shrunk communicator");
  ids_.mon_dead_skips = reg.define_counter(
      "mpim_mon_dead_skips_total",
      "gather rows skipped immediately because the contributor is dead");
  ids_.gov_shed_steps = reg.define_counter(
      "mpim_governor_shed_steps_total",
      "degradation governor fidelity-shedding steps taken");
  ids_.gov_refusals = reg.define_counter(
      "mpim_governor_refusals_total",
      "monitoring reservations refused at maximum shedding");
  ids_.gov_overhead_alarms = reg.define_counter(
      "mpim_governor_overhead_alarms_total",
      "sessions whose modeled overhead exceeded MPIM_OVERHEAD_PCT");
  ids_.gov_shed_level = reg.define_gauge(
      "mpim_governor_shed_level",
      "current governor shed level (0 none .. 4 spans dropped)");
  ids_.gov_mem_bytes = reg.define_gauge(
      "mpim_governor_mem_bytes",
      "monitoring-plane bytes accounted against MPIM_MEM_BUDGET_BYTES");

  ids_.reorder_treematch_ns = reg.define_counter(
      "mpim_reorder_treematch_ns_total", "TreeMatch CPU time, ns");
  ids_.reorder_applied = reg.define_counter(
      "mpim_reorder_applied_total", "TreeMatch permutation decisions applied");
  ids_.reorder_identity = reg.define_counter(
      "mpim_reorder_identity_fallback_total", "identity permutation fallbacks");

  ids_.introspect_starts = reg.define_counter(
      "mpim_introspect_snapshot_starts_total", "MPI_M_snapshot_start calls");
  ids_.introspect_frames = reg.define_counter(
      "mpim_introspect_frames_total", "snapshot frames closed");
  ids_.introspect_frames_dropped = reg.define_counter(
      "mpim_introspect_frames_dropped_total",
      "snapshot frames evicted from the bounded ring");
  ids_.introspect_boundaries = reg.define_counter(
      "mpim_introspect_phase_boundaries_total",
      "communication phase boundaries detected");
  ids_.introspect_imbalance_milli = reg.define_gauge(
      "mpim_introspect_load_imbalance_milli",
      "send-byte load imbalance (max/mean) x1000, last analyzed window set");
  ids_.introspect_neighbor_milli = reg.define_gauge(
      "mpim_introspect_neighbor_fraction_milli",
      "fraction of bytes between deepest-level neighbors x1000");
  ids_.introspect_mismatch_hops = reg.define_gauge(
      "mpim_introspect_mismatch_byte_hops",
      "topology mismatch cost: bytes x tree hop distance");
  ids_.introspect_gain_milli = reg.define_gauge(
      "mpim_introspect_treematch_gain_milli",
      "estimated TreeMatch cost reduction x1000");

  ids_.obsplane_events = reg.define_counter(
      "mpim_obsplane_events_total",
      "streaming-plane staged events drained into the store");
  ids_.obsplane_drops = reg.define_counter(
      "mpim_obsplane_drops_total",
      "streaming-plane staged events dropped under back-pressure");
  ids_.obsplane_epochs = reg.define_counter(
      "mpim_obsplane_epochs_total", "streaming-plane epoch blocks emitted");
  ids_.obsplane_findings = reg.define_counter(
      "mpim_obsplane_findings_total",
      "cross-layer correlation findings emitted at run end");
  ids_.obsplane_series = reg.define_gauge(
      "mpim_obsplane_series", "live (rank, metric) series in the plane store");
  ids_.obsplane_mem_bytes = reg.define_gauge(
      "mpim_obsplane_mem_bytes", "streaming-plane working-set bytes");
  ids_.obsplane_window_merge = reg.define_gauge(
      "mpim_obsplane_window_merge",
      "epochs merged per store bucket (doubles per governor widen step)");

  ids_.critpath_events = reg.define_counter(
      "mpim_critpath_events_total",
      "happens-before events captured by the critical-path profiler");
  ids_.critpath_dropped = reg.define_counter(
      "mpim_critpath_events_dropped_total",
      "critpath events evicted from the bounded per-rank ring");
  ids_.critpath_wait_ns = reg.define_counter(
      "mpim_critpath_wait_ns_total",
      "classified wait time charged at receive completions, virtual ns");
  ids_.critpath_late_sender_ns = reg.define_counter(
      "mpim_critpath_late_sender_ns_total",
      "late-sender wait time, virtual ns");
  ids_.critpath_late_receiver_ns = reg.define_counter(
      "mpim_critpath_late_receiver_ns_total",
      "late-receiver inbox dwell time, virtual ns");
  ids_.critpath_wait_collective_ns = reg.define_counter(
      "mpim_critpath_wait_collective_ns_total",
      "wait-at-collective time, virtual ns");
  ids_.critpath_root_imbalance_ns = reg.define_counter(
      "mpim_critpath_root_imbalance_ns_total",
      "imbalance-at-root wait time, virtual ns");
  ids_.critpath_extractions = reg.define_counter(
      "mpim_critpath_extractions_total",
      "backward critical-path extractions completed");
  ids_.critpath_blame_only = reg.define_gauge(
      "mpim_critpath_blame_only",
      "1 when the governor refused event rings (accumulators only)");
}

Hub::~Hub() {
  for (auto& slot : spans_) delete slot.load(std::memory_order_acquire);
}

Hub::RankSpans& Hub::ensure_rank_spans(int rank) {
  auto& slot = spans_[static_cast<std::size_t>(rank)];
  if (RankSpans* rs = slot.load(std::memory_order_acquire)) return *rs;
  std::lock_guard lock(spans_init_mutex_);
  if (RankSpans* rs = slot.load(std::memory_order_relaxed)) return *rs;
  auto rs = std::make_unique<RankSpans>(span_capacity_);
  // A ring born after a governor shed step honors the current soft cap.
  rs->ring.set_limit(span_soft_capacity_.load(std::memory_order_relaxed));
  RankSpans* raw = rs.release();
  slot.store(raw, std::memory_order_release);
  return *raw;
}

void Hub::set_span_soft_capacity(std::size_t cap) {
  const std::size_t clamped =
      std::min(cap == 0 ? std::size_t{1} : cap, span_capacity_);
  // Under the init mutex so a ring created concurrently either sees the new
  // cap at birth or is visible to this loop -- never neither.
  std::lock_guard lock(spans_init_mutex_);
  span_soft_capacity_.store(clamped, std::memory_order_relaxed);
  for (auto& slot : spans_)
    if (RankSpans* rs = slot.load(std::memory_order_acquire))
      rs->ring.set_limit(clamped);
}

bool Hub::span_begin(int rank, const char* name, char cat, double t_s) {
  if (!enabled() || spans_suppressed()) return false;
  check(rank >= 0 && rank < nranks_, "telemetry span rank out of range");
  RankSpans& rs = ensure_rank_spans(rank);
  if (rs.open_depth >= kMaxOpenSpans) return false;  // too deep: drop quietly
  OpenSpan& os = rs.open[rs.open_depth++];
  copy_name(os.name, name);
  os.cat = cat;
  os.t0_s = t_s;
  return true;
}

void Hub::span_end(int rank, double t_s, std::int64_t a, std::int64_t b) {
  check(rank >= 0 && rank < nranks_, "telemetry span rank out of range");
  RankSpans* rsp = rank_spans(rank);
  check(rsp != nullptr, "telemetry span_end without span_begin");
  RankSpans& rs = *rsp;
  check(rs.open_depth > 0, "telemetry span_end without span_begin");
  const OpenSpan& os = rs.open[--rs.open_depth];
  SpanRec rec;
  copy_name(rec.name, os.name);
  rec.cat = os.cat;
  rec.depth = static_cast<std::uint8_t>(rs.open_depth);
  rec.t0_s = os.t0_s;
  rec.t1_s = t_s;
  rec.a = a;
  rec.b = b;
  rs.ring.push(rec);
  if (span_sink_armed_.load(std::memory_order_acquire)) span_sink_(rank, rec);
}

void Hub::span_complete(int rank, const char* name, char cat, double t0_s,
                        double t1_s, std::int64_t a, std::int64_t b) {
  if (!enabled() || spans_suppressed()) return;
  check(rank >= 0 && rank < nranks_, "telemetry span rank out of range");
  RankSpans& rs = ensure_rank_spans(rank);
  SpanRec rec;
  copy_name(rec.name, name);
  rec.cat = cat;
  rec.depth = static_cast<std::uint8_t>(rs.open_depth);
  rec.t0_s = t0_s;
  rec.t1_s = t1_s;
  rec.a = a;
  rec.b = b;
  rs.ring.push(rec);
  if (span_sink_armed_.load(std::memory_order_acquire)) span_sink_(rank, rec);
}

std::vector<SpanRec> Hub::spans(int rank) const {
  check(rank >= 0 && rank < nranks_, "telemetry span rank out of range");
  const RankSpans* rs = rank_spans(rank);
  return rs != nullptr ? rs->ring.snapshot() : std::vector<SpanRec>{};
}

std::uint64_t Hub::spans_recorded() const {
  std::uint64_t n = 0;
  for (const auto& slot : spans_)
    if (const RankSpans* rs = slot.load(std::memory_order_acquire))
      n += rs->ring.pushed();
  return n;
}

std::uint64_t Hub::spans_dropped() const {
  std::uint64_t n = 0;
  for (const auto& slot : spans_)
    if (const RankSpans* rs = slot.load(std::memory_order_acquire))
      n += rs->ring.dropped();
  return n;
}

void Hub::reset() {
  registry_.reset();
  for (auto& slot : spans_) {
    if (RankSpans* rs = slot.load(std::memory_order_acquire)) {
      rs->ring.clear();
      rs->open_depth = 0;
    }
  }
}

}  // namespace mpim::telemetry
