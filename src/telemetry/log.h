// Structured logger for runtime diagnostics (deadlock reports, fault
// fallbacks, partial-data warnings). Every record goes to stderr in a
// fixed `[mpim][LEVEL][component] rank N: msg` shape; if the environment
// variable MPIM_LOG_FILE names a path, the same record is appended there
// as one JSON object per line (JSONL).
//
// This is a cold path: records are rare (errors and decisions, not
// per-message events), so the implementation favours robustness over
// speed — the JSONL file is opened per record and guarded by one mutex.
#pragma once

#include <string>

namespace mpim::telemetry {

enum class LogLevel { debug, info, warn, error };

const char* log_level_name(LogLevel level);

/// Emit one structured record. `rank` may be -1 for process-wide events.
void log(LogLevel level, int rank, const std::string& component,
         const std::string& msg);

/// Escape a string for embedding inside a JSON string literal (exposed for
/// the exporters, which share the JSONL encoding).
std::string json_escape(const std::string& s);

}  // namespace mpim::telemetry
