#include "telemetry/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace mpim::telemetry {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "DEBUG";
    case LogLevel::info:
      return "INFO";
    case LogLevel::warn:
      return "WARN";
    case LogLevel::error:
      return "ERROR";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void log(LogLevel level, int rank, const std::string& component,
         const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);

  std::fprintf(stderr, "[mpim][%s][%s] rank %d: %s\n", log_level_name(level),
               component.c_str(), rank, msg.c_str());

  // Re-read the environment each record: cold path, and it lets tests (and
  // long-lived hosts) redirect without process-wide static state.
  const char* path = std::getenv("MPIM_LOG_FILE");
  if (path == nullptr || path[0] == '\0') return;
  std::ofstream f(path, std::ios::app);
  if (!f) return;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  f << "{\"ts\":" << ts << ",\"level\":\"" << log_level_name(level)
    << "\",\"rank\":" << rank << ",\"component\":\""
    << json_escape(component) << "\",\"msg\":\"" << json_escape(msg)
    << "\"}\n";
}

}  // namespace mpim::telemetry
