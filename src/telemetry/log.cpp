#include "telemetry/log.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "support/env.h"

namespace mpim::telemetry {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "DEBUG";
    case LogLevel::info:
      return "INFO";
    case LogLevel::warn:
      return "WARN";
    case LogLevel::error:
      return "ERROR";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void log(LogLevel level, int rank, const std::string& component,
         const std::string& msg) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);

  // MPIM_LOG_LEVEL names the lowest severity that gets through; it is
  // re-read each record (cold path, and tests flip it mid-process). An
  // unparsable value keeps everything flowing -- losing diagnostics to a
  // typo would be worse -- and warns once per distinct bad value.
  static const char* const kLevelNames[] = {"debug", "info", "warn", "error"};
  const auto min_level = support::env_choice("MPIM_LOG_LEVEL", kLevelNames, 4);
  if (min_level.ok() && static_cast<int>(level) < min_level.value) return;
  if (min_level.invalid()) {
    static std::string warned_raw;
    if (warned_raw != min_level.raw) {
      warned_raw = min_level.raw;
      std::fprintf(stderr,
                   "[mpim][WARN][log] rank -1: ignoring invalid "
                   "MPIM_LOG_LEVEL=\"%s\" (want debug|info|warn|error); "
                   "logging everything\n",
                   min_level.raw.c_str());
    }
  }

  std::fprintf(stderr, "[mpim][%s][%s] rank %d: %s\n", log_level_name(level),
               component.c_str(), rank, msg.c_str());

  // Re-read the environment each record: cold path, and it lets tests (and
  // long-lived hosts) redirect without process-wide static state. Strict
  // parse: an empty or whitespace-only value would append records to a
  // file literally named "" or " "; warn once per distinct bad value and
  // keep stderr-only logging instead.
  const auto file = support::env_nonempty_string("MPIM_LOG_FILE");
  if (file.invalid()) {
    static std::string warned_file_raw;
    if (warned_file_raw != file.raw) {
      warned_file_raw = file.raw;
      std::fprintf(stderr,
                   "[mpim][WARN][log] rank -1: ignoring invalid "
                   "MPIM_LOG_FILE=\"%s\" (want a non-empty file path); "
                   "logging to stderr only\n",
                   file.raw.c_str());
    }
  }
  if (!file.ok()) return;
  std::ofstream f(file.value, std::ios::app);
  if (!f) return;
  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  f << "{\"ts\":" << ts << ",\"level\":\"" << log_level_name(level)
    << "\",\"rank\":" << rank << ",\"component\":\""
    << json_escape(component) << "\",\"msg\":\"" << json_escape(msg)
    << "\"}\n";
}

}  // namespace mpim::telemetry
