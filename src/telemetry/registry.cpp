#include "telemetry/registry.h"

#include <algorithm>

#include "support/error.h"

namespace mpim::telemetry {

Registry::Registry(int nranks) : nranks_(nranks) {
  check(nranks > 0, "telemetry::Registry needs at least one rank");
}

int Registry::define(MetricDesc d, std::size_t cells_per_rank) {
  check(!d.name.empty(), "telemetry metric needs a name");
  check(find(d.name) < 0, "telemetry metric redefined: " + d.name);
  Metric m;
  m.desc = std::move(d);
  m.cells_per_rank = cells_per_rank;
  m.rank_stride =
      (cells_per_rank + kCellsPerLine - 1) / kCellsPerLine * kCellsPerLine;
  const std::size_t total = m.rank_stride * static_cast<std::size_t>(nranks_);
  m.cells = std::make_unique<std::atomic<std::uint64_t>[]>(total);
  for (std::size_t i = 0; i < total; ++i)
    m.cells[i].store(0, std::memory_order_relaxed);
  metrics_.push_back(std::move(m));
  return static_cast<int>(metrics_.size()) - 1;
}

int Registry::define_counter(std::string name, std::string help) {
  MetricDesc d;
  d.name = std::move(name);
  d.help = std::move(help);
  d.kind = MetricKind::counter;
  return define(std::move(d), 1);
}

int Registry::define_gauge(std::string name, std::string help) {
  MetricDesc d;
  d.name = std::move(name);
  d.help = std::move(help);
  d.kind = MetricKind::gauge;
  return define(std::move(d), 1);
}

int Registry::define_histogram(std::string name, std::string help,
                               std::vector<double> bounds) {
  check(!bounds.empty(), "histogram needs at least one bucket bound");
  check(std::is_sorted(bounds.begin(), bounds.end()),
        "histogram bounds must be ascending");
  MetricDesc d;
  d.name = std::move(name);
  d.help = std::move(help);
  d.kind = MetricKind::histogram;
  d.bounds = std::move(bounds);
  const std::size_t cells = d.bounds.size() + 1;  // + overflow
  return define(std::move(d), cells);
}

int Registry::find(std::string_view name) const {
  for (std::size_t i = 0; i < metrics_.size(); ++i)
    if (metrics_[i].desc.name == name) return static_cast<int>(i);
  return -1;
}

std::size_t Registry::check_id(int id) const {
  check(id >= 0 && id < metric_count(), "telemetry metric id out of range");
  return static_cast<std::size_t>(id);
}

std::atomic<std::uint64_t>& Registry::cell(int id, int rank,
                                           std::size_t idx) {
  const Metric& m = metrics_[check_id(id)];
  check(rank >= 0 && rank < nranks_, "telemetry rank out of range");
  return m.cells[static_cast<std::size_t>(rank) * m.rank_stride + idx];
}

const std::atomic<std::uint64_t>& Registry::cell(int id, int rank,
                                                 std::size_t idx) const {
  return const_cast<Registry*>(this)->cell(id, rank, idx);
}

void Registry::add(int id, int rank, std::uint64_t v) {
  cell(id, rank, 0).fetch_add(v, std::memory_order_relaxed);
}

void Registry::gauge_add(int id, int rank, std::int64_t delta) {
  cell(id, rank, 0).fetch_add(static_cast<std::uint64_t>(delta),
                              std::memory_order_relaxed);
}

void Registry::gauge_set(int id, int rank, std::int64_t v) {
  cell(id, rank, 0).store(static_cast<std::uint64_t>(v),
                          std::memory_order_relaxed);
}

void Registry::observe(int id, int rank, double v) {
  const Metric& m = metrics_[check_id(id)];
  const std::vector<double>& bounds = m.desc.bounds;
  std::size_t idx = bounds.size();  // overflow by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (v <= bounds[i]) {
      idx = i;
      break;
    }
  }
  cell(id, rank, idx).fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Registry::counter_value(int id, int rank) const {
  return cell(id, rank, 0).load(std::memory_order_relaxed);
}

std::uint64_t Registry::counter_total(int id) const {
  std::uint64_t sum = 0;
  for (int r = 0; r < nranks_; ++r) sum += counter_value(id, r);
  return sum;
}

std::int64_t Registry::gauge_value(int id, int rank) const {
  return static_cast<std::int64_t>(
      cell(id, rank, 0).load(std::memory_order_relaxed));
}

std::int64_t Registry::gauge_total(int id) const {
  std::int64_t sum = 0;
  for (int r = 0; r < nranks_; ++r) sum += gauge_value(id, r);
  return sum;
}

Registry::HistView Registry::histogram(int id, int rank) const {
  const Metric& m = metrics_[check_id(id)];
  check(m.desc.kind == MetricKind::histogram, "not a histogram: " +
                                                  m.desc.name);
  HistView v;
  v.bounds = m.desc.bounds;
  v.buckets.resize(m.cells_per_rank);
  for (std::size_t i = 0; i < m.cells_per_rank; ++i) {
    v.buckets[i] = cell(id, rank, i).load(std::memory_order_relaxed);
    v.count += v.buckets[i];
  }
  return v;
}

Registry::HistView Registry::histogram_total(int id) const {
  HistView total = histogram(id, 0);
  for (int r = 1; r < nranks_; ++r) {
    const HistView v = histogram(id, r);
    for (std::size_t i = 0; i < v.buckets.size(); ++i)
      total.buckets[i] += v.buckets[i];
    total.count += v.count;
  }
  return total;
}

std::uint64_t Registry::scalar_value(int id, int rank) const {
  const Metric& m = metrics_[check_id(id)];
  if (m.desc.kind == MetricKind::histogram) return histogram(id, rank).count;
  return counter_value(id, rank);
}

std::uint64_t Registry::scalar_total(int id) const {
  std::uint64_t sum = 0;
  for (int r = 0; r < nranks_; ++r) sum += scalar_value(id, r);
  return sum;
}

void Registry::reset() {
  for (Metric& m : metrics_) {
    const std::size_t total =
        m.rank_stride * static_cast<std::size_t>(nranks_);
    for (std::size_t i = 0; i < total; ++i)
      m.cells[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace mpim::telemetry
