// Telemetry hub: one per Engine. Owns the metrics registry, the per-rank
// span rings, and the enabled flag that gates every recording site.
//
// Disabled (the default) the entire subsystem costs one relaxed atomic
// load per instrumentation site; virtual time is never charged either way,
// so enabling telemetry cannot perturb simulated clocks or determinism.
//
// Spans use the rank's *virtual* clock, which is what makes the exported
// Chrome traces line up with the cost model rather than host scheduling.
// Collective spans nest via a small per-rank open-span stack (rank threads
// open/close their own spans, so no locking); non-nested intervals such as
// monitoring sessions are recorded as complete spans when they close.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/ring.h"

namespace mpim::telemetry {

/// One closed span. `name` is a truncating copy so records stay POD and
/// ring-friendly; `a`/`b` carry site-specific arguments (e.g. dst/bytes
/// for a p2p child span). `depth` is the nesting level at record time.
struct SpanRec {
  static constexpr std::size_t kNameCap = 24;
  char name[kNameCap] = {0};
  char cat = '?';  ///< 'C' collective, 'M' message, 'S' session, 'R' reorder
  std::uint8_t depth = 0;
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

/// Ids of the standard metric catalog defined by the Hub constructor.
/// Names match the MPI_T pvar names in src/mpit/pvar.cpp exactly.
struct StdIds {
  // engine internals
  int engine_messages = -1;        ///< counter: p2p/coll/osc sends
  int engine_bytes = -1;           ///< counter: payload bytes sent
  int engine_inbox_depth = -1;     ///< histogram: pending-op queue depth
  int engine_match_s = -1;         ///< histogram: arrival->match latency (s)
  int engine_msg_bytes = -1;       ///< histogram: message size
  int engine_bytes_in_flight = -1; ///< gauge: delivered but unmatched bytes
  // fault-plan outcomes
  int fault_retransmits = -1;      ///< counter: extra attempts (attempts-1)
  int fault_drops = -1;            ///< counter: on-wire transmissions lost
  int fault_lost = -1;             ///< counter: messages lost for good
  int fault_backoff_ns = -1;       ///< counter: retransmit backoff, virtual ns
  int fault_stalls = -1;           ///< counter: stall faults taken
  int fault_crashes = -1;          ///< counter: crash faults taken
  // mpimon session lifecycle
  int mon_session_starts = -1;
  int mon_session_suspends = -1;
  int mon_session_resets = -1;
  int mon_gather_timeouts = -1;    ///< counter: per missing contributor
  int mon_partial_data = -1;       ///< counter: MPI_M_PARTIAL_DATA returns
  // fault recovery (shrink/rebind) and the degradation governor
  int mon_rebinds = -1;            ///< counter: MPI_M_rebind successes
  int mon_dead_skips = -1;         ///< counter: gather rows skipped, known dead
  int gov_shed_steps = -1;         ///< counter: governor fidelity-shed steps
  int gov_refusals = -1;           ///< counter: reservations refused at max shed
  int gov_overhead_alarms = -1;    ///< counter: MPIM_OVERHEAD_PCT violations
  int gov_shed_level = -1;         ///< gauge: current shed level (0..4)
  int gov_mem_bytes = -1;          ///< gauge: accounted monitoring bytes
  // reorder decisions
  int reorder_treematch_ns = -1;   ///< counter: TreeMatch CPU time, ns
  int reorder_applied = -1;        ///< counter: TreeMatch decisions applied
  int reorder_identity = -1;       ///< counter: identity fallbacks
  // introspection snapshots (src/introspect)
  int introspect_starts = -1;      ///< counter: MPI_M_snapshot_start calls
  int introspect_frames = -1;      ///< counter: snapshot frames closed
  int introspect_frames_dropped = -1;  ///< counter: frames evicted from ring
  int introspect_boundaries = -1;  ///< counter: phase boundaries detected
  int introspect_imbalance_milli = -1;   ///< gauge: load imbalance x1000
  int introspect_neighbor_milli = -1;    ///< gauge: neighbor byte frac x1000
  int introspect_mismatch_hops = -1;     ///< gauge: bytes x hop distance
  int introspect_gain_milli = -1;        ///< gauge: est. TreeMatch gain x1000
  // streaming aggregation plane (src/obsplane)
  int obsplane_events = -1;        ///< counter: staged events drained
  int obsplane_drops = -1;         ///< counter: staged events dropped (full)
  int obsplane_epochs = -1;        ///< counter: epoch blocks emitted
  int obsplane_findings = -1;      ///< counter: correlation findings
  int obsplane_series = -1;        ///< gauge: live (rank, metric) series
  int obsplane_mem_bytes = -1;     ///< gauge: plane working-set bytes
  int obsplane_window_merge = -1;  ///< gauge: epochs merged per bucket
  // causal critical-path profiler (src/critpath)
  int critpath_events = -1;        ///< counter: happens-before events captured
  int critpath_dropped = -1;       ///< counter: ring evictions
  int critpath_wait_ns = -1;       ///< counter: classified wait, virtual ns
  int critpath_late_sender_ns = -1;      ///< counter: late-sender wait ns
  int critpath_late_receiver_ns = -1;    ///< counter: inbox dwell ns
  int critpath_wait_collective_ns = -1;  ///< counter: wait-at-collective ns
  int critpath_root_imbalance_ns = -1;   ///< counter: imbalance-at-root ns
  int critpath_extractions = -1;   ///< counter: backward path extractions
  int critpath_blame_only = -1;    ///< gauge: 1 when rings were refused
};

class Hub {
 public:
  explicit Hub(int nranks, std::size_t span_capacity = 1u << 14);
  ~Hub();

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  int nranks() const { return nranks_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  const StdIds& ids() const { return ids_; }

  // --- enabled-gated convenience recorders (cold-ish call sites) ---
  void add(int id, int rank, std::uint64_t v = 1) {
    if (enabled()) registry_.add(id, rank, v);
  }
  void observe(int id, int rank, double v) {
    if (enabled()) registry_.observe(id, rank, v);
  }
  void gauge_add(int id, int rank, std::int64_t delta) {
    if (enabled()) registry_.gauge_add(id, rank, delta);
  }
  void gauge_set(int id, int rank, std::int64_t v) {
    if (enabled()) registry_.gauge_set(id, rank, v);
  }

  // --- span tracing (rank thread only for its own rank) ---
  /// Opens a nested span; returns false (and records nothing) when
  /// disabled, in which case the matching span_end must be skipped.
  bool span_begin(int rank, const char* name, char cat, double t_s);
  /// Closes the innermost open span and records it.
  void span_end(int rank, double t_s, std::int64_t a = 0, std::int64_t b = 0);
  /// Records an already-closed interval (used for sites that do not nest
  /// LIFO with collectives, e.g. monitoring sessions).
  void span_complete(int rank, const char* name, char cat, double t0_s,
                     double t1_s, std::int64_t a = 0, std::int64_t b = 0);

  std::vector<SpanRec> spans(int rank) const;
  std::uint64_t spans_recorded() const;
  std::uint64_t spans_dropped() const;

  /// Optional tap on every recorded span, invoked on the recording rank's
  /// own thread right after the ring push (so sinks inherit the per-rank
  /// single-producer contract). Install while quiescent (before run());
  /// the streaming plane uses this to forward spans without snapshotting
  /// rings. Passing an empty function disarms the tap.
  using SpanSink = std::function<void(int rank, const SpanRec& rec)>;
  void set_span_sink(SpanSink sink) {
    span_sink_ = std::move(sink);
    span_sink_armed_.store(static_cast<bool>(span_sink_),
                           std::memory_order_release);
  }

  // --- degradation-governor hooks (src/mpimon/governor.h) ---
  /// Ring capacity the spans were allocated with (per rank).
  std::size_t span_capacity() const { return span_capacity_; }
  /// Effective live-record cap per rank ring. The backing store is never
  /// reallocated (push is lock-free on rank threads); lowering the cap
  /// sheds the accounted working set and tightens the wrap point.
  std::size_t span_soft_capacity() const {
    return span_soft_capacity_.load(std::memory_order_relaxed);
  }
  void set_span_soft_capacity(std::size_t cap);
  /// Final shedding step: drop span recording entirely (metrics stay).
  bool spans_suppressed() const {
    return spans_suppressed_.load(std::memory_order_relaxed);
  }
  void set_spans_suppressed(bool on) {
    spans_suppressed_.store(on, std::memory_order_relaxed);
  }

  /// Clears spans and zeroes all metrics (call between runs, not during).
  void reset();

 private:
  struct OpenSpan {
    char name[SpanRec::kNameCap] = {0};
    char cat = '?';
    double t0_s = 0.0;
  };
  static constexpr std::size_t kMaxOpenSpans = 32;

  struct RankSpans {
    Ring<SpanRec> ring;
    OpenSpan open[kMaxOpenSpans];
    std::size_t open_depth = 0;
    explicit RankSpans(std::size_t cap) : ring(cap) {}
  };

  /// A rank's ring is allocated on its first recorded span, not in the
  /// constructor: at the default capacity a ring is 1 MiB/rank, which at
  /// np=4096+ would dominate the whole engine's working set even with
  /// telemetry disabled (the default). The slot pointer transitions
  /// nullptr -> ring exactly once (creation serialized by spans_init_mutex_,
  /// published with a release store), so the post-creation record path
  /// stays lock-free on the rank's own thread.
  RankSpans& ensure_rank_spans(int rank);
  RankSpans* rank_spans(int rank) const {
    return spans_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  int nranks_;
  std::size_t span_capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> span_soft_capacity_;
  std::atomic<bool> spans_suppressed_{false};
  SpanSink span_sink_;
  std::atomic<bool> span_sink_armed_{false};
  Registry registry_;
  StdIds ids_;
  mutable std::mutex spans_init_mutex_;
  std::vector<std::atomic<RankSpans*>> spans_;
};

}  // namespace mpim::telemetry
