// Metrics registry: counters, gauges, fixed-bucket histograms.
//
// Recording is per-rank sharded and lock-free: each metric owns one cache
// line of atomic cells per rank, so the hot path is a single relaxed
// fetch_add with no false sharing between rank threads. Reads merge the
// shards on demand; they are exact once rank threads are quiescent and
// monotone-approximate while they run.
//
// Metric definition is not thread-safe: define everything before rank
// threads start recording (the engine defines its standard catalog at
// construction).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mpim::telemetry {

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

struct MetricDesc {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::counter;
  std::vector<double> bounds;  ///< histogram inclusive upper bounds, ascending
};

class Registry {
 public:
  explicit Registry(int nranks);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  int define_counter(std::string name, std::string help);
  int define_gauge(std::string name, std::string help);
  /// `bounds` are inclusive upper bucket edges; an overflow bucket is
  /// appended automatically.
  int define_histogram(std::string name, std::string help,
                       std::vector<double> bounds);

  /// Metric id for `name`, or -1 if not defined.
  int find(std::string_view name) const;
  int metric_count() const { return static_cast<int>(metrics_.size()); }
  const MetricDesc& desc(int id) const { return metrics_[check_id(id)].desc; }
  int nranks() const { return nranks_; }

  // --- hot path (relaxed atomics, callable from any thread) ---
  void add(int id, int rank, std::uint64_t v = 1);
  void gauge_add(int id, int rank, std::int64_t delta);
  void gauge_set(int id, int rank, std::int64_t v);
  void observe(int id, int rank, double v);

  // --- merge-on-read ---
  std::uint64_t counter_value(int id, int rank) const;
  std::uint64_t counter_total(int id) const;
  std::int64_t gauge_value(int id, int rank) const;
  std::int64_t gauge_total(int id) const;

  struct HistView {
    std::vector<double> bounds;          ///< upper edges (no overflow edge)
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
  };
  HistView histogram(int id, int rank) const;
  HistView histogram_total(int id) const;

  /// Scalar view for exporters / pvar read-through: counter value, gauge
  /// value (two's-complement cast), or histogram observation count.
  std::uint64_t scalar_value(int id, int rank) const;
  std::uint64_t scalar_total(int id) const;

  void reset();

 private:
  // One rank's cells padded out to whole cache lines.
  static constexpr std::size_t kCellsPerLine = 8;

  struct Metric {
    MetricDesc desc;
    std::size_t cells_per_rank = 0;  ///< logical cells (1, or buckets+1)
    std::size_t rank_stride = 0;     ///< padded cells per rank
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  };

  int define(MetricDesc d, std::size_t cells_per_rank);
  std::size_t check_id(int id) const;
  std::atomic<std::uint64_t>& cell(int id, int rank, std::size_t idx);
  const std::atomic<std::uint64_t>& cell(int id, int rank,
                                         std::size_t idx) const;

  int nranks_;
  std::vector<Metric> metrics_;
};

}  // namespace mpim::telemetry
