#include "telemetry/export.h"

#include <fstream>
#include <map>
#include <ostream>

#include "support/error.h"
#include "telemetry/log.h"

namespace mpim::telemetry {

namespace {

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::counter:
      return "counter";
    case MetricKind::gauge:
      return "gauge";
    case MetricKind::histogram:
      return "histogram";
  }
  return "?";
}

std::ofstream open_or_fail(const std::string& path) {
  std::ofstream f(path);
  check(static_cast<bool>(f), "cannot open for writing: " + path);
  return f;
}

}  // namespace

void write_chrome_trace(const Hub& hub, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (int r = 0; r < hub.nranks(); ++r) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  for (int r = 0; r < hub.nranks(); ++r) {
    for (const SpanRec& s : hub.spans(r)) {
      sep();
      const double ts_us = s.t0_s * 1e6;
      const double dur_us = (s.t1_s - s.t0_s) * 1e6;
      os << "{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\"" << s.cat
         << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << r << ",\"ts\":" << ts_us
         << ",\"dur\":" << (dur_us < 0 ? 0.0 : dur_us)
         << ",\"args\":{\"depth\":" << static_cast<int>(s.depth)
         << ",\"a\":" << s.a << ",\"b\":" << s.b << "}}";
    }
  }
  os << "],\"otherData\":{\"spans_dropped\":" << hub.spans_dropped()
     << ",\"metrics\":{";
  const Registry& reg = hub.registry();
  for (int id = 0; id < reg.metric_count(); ++id) {
    if (id > 0) os << ",";
    os << "\"" << json_escape(reg.desc(id).name)
       << "\":" << reg.scalar_total(id);
  }
  os << "}}}\n";
}

void write_chrome_trace_file(const Hub& hub, const std::string& path) {
  std::ofstream f = open_or_fail(path);
  write_chrome_trace(hub, f);
}

void write_metrics_csv(const Hub& hub, std::ostream& os) {
  os << "metric,kind,rank,field,value\n";
  const Registry& reg = hub.registry();
  for (int id = 0; id < reg.metric_count(); ++id) {
    const MetricDesc& d = reg.desc(id);
    for (int r = 0; r < reg.nranks(); ++r) {
      switch (d.kind) {
        case MetricKind::counter:
          os << d.name << ",counter," << r << ",value,"
             << reg.counter_value(id, r) << "\n";
          break;
        case MetricKind::gauge:
          os << d.name << ",gauge," << r << ",value," << reg.gauge_value(id, r)
             << "\n";
          break;
        case MetricKind::histogram: {
          const Registry::HistView v = reg.histogram(id, r);
          for (std::size_t i = 0; i < v.buckets.size(); ++i) {
            os << d.name << ",histogram," << r << ",le=";
            if (i < v.bounds.size())
              os << v.bounds[i];
            else
              os << "inf";
            os << "," << v.buckets[i] << "\n";
          }
          os << d.name << ",histogram," << r << ",count," << v.count << "\n";
          break;
        }
      }
    }
  }
}

void write_metrics_csv_file(const Hub& hub, const std::string& path) {
  std::ofstream f = open_or_fail(path);
  write_metrics_csv(hub, f);
}

void write_spans_csv(const Hub& hub, std::ostream& os) {
  os << "rank,name,cat,depth,t0_s,t1_s,a,b\n";
  for (int r = 0; r < hub.nranks(); ++r) {
    for (const SpanRec& s : hub.spans(r)) {
      os << r << "," << s.name << "," << s.cat << ","
         << static_cast<int>(s.depth) << "," << format_sig(s.t0_s, 9) << ","
         << format_sig(s.t1_s, 9) << "," << s.a << "," << s.b << "\n";
    }
  }
}

void write_spans_csv_file(const Hub& hub, const std::string& path) {
  std::ofstream f = open_or_fail(path);
  write_spans_csv(hub, f);
}

Table summary_table(const Hub& hub) {
  Table t({"metric", "kind", "total", "max rank", "max value"});
  const Registry& reg = hub.registry();
  for (int id = 0; id < reg.metric_count(); ++id) {
    const MetricDesc& d = reg.desc(id);
    std::uint64_t max_v = 0;
    int max_r = 0;
    for (int r = 0; r < reg.nranks(); ++r) {
      const std::uint64_t v = reg.scalar_value(id, r);
      if (v > max_v) {
        max_v = v;
        max_r = r;
      }
    }
    t.add(d.name, kind_name(d.kind), reg.scalar_total(id), max_r, max_v);
  }
  return t;
}

Table span_summary_table(const Hub& hub) {
  struct Roll {
    std::uint64_t count = 0;
    double total_s = 0.0;
  };
  std::map<std::string, Roll> rolls;
  for (int r = 0; r < hub.nranks(); ++r) {
    for (const SpanRec& s : hub.spans(r)) {
      Roll& roll = rolls[s.name];
      ++roll.count;
      roll.total_s += s.t1_s - s.t0_s;
    }
  }
  Table t({"span", "count", "total", "mean"});
  for (const auto& [name, roll] : rolls) {
    t.add(name, roll.count, format_seconds(roll.total_s),
          format_seconds(roll.count > 0 ? roll.total_s / roll.count : 0.0));
  }
  return t;
}

}  // namespace mpim::telemetry
