#include "introspect/analyzer.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "introspect/snapshot.h"
#include "support/error.h"
#include "treematch/treematch.h"

namespace mpim::introspect {

namespace {

double vec_norm(std::span<const unsigned long> v) {
  double s = 0.0;
  for (unsigned long x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

}  // namespace

double cosine_distance(std::span<const unsigned long> a,
                       std::span<const unsigned long> b) {
  check(a.size() == b.size(), "cosine_distance: size mismatch");
  const double na = vec_norm(a);
  const double nb = vec_norm(b);
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return 1.0;
  double dot = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  return 1.0 - dot / (na * nb);
}

double l1_distance(std::span<const unsigned long> a,
                   std::span<const unsigned long> b) {
  check(a.size() == b.size(), "l1_distance: size mismatch");
  double diff = 0.0, mass = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(a[i]);
    const double y = static_cast<double>(b[i]);
    diff += std::abs(x - y);
    mass += x + y;
  }
  return mass == 0.0 ? 0.0 : diff / mass;
}

double load_imbalance(const CommMatrix& bytes) {
  const std::size_t n = bytes.rows();
  if (n == 0) return 0.0;
  double max_row = 0.0, total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < bytes.cols(); ++j)
      row += static_cast<double>(bytes(i, j));
    max_row = std::max(max_row, row);
    total += row;
  }
  if (total == 0.0) return 0.0;
  return max_row / (total / static_cast<double>(n));
}

double neighbor_affinity_fraction(const CommMatrix& bytes,
                                  const topo::Topology& topo,
                                  const topo::Placement& placement) {
  const std::size_t n = bytes.rows();
  check(placement.size() >= n, "placement smaller than matrix order");
  double neighbor = 0.0, total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < bytes.cols(); ++j) {
      if (i == j) continue;
      const double v = static_cast<double>(bytes(i, j));
      if (v == 0.0) continue;
      total += v;
      if (topo.hop_distance(placement[i], placement[j]) <= 2) neighbor += v;
    }
  }
  return total == 0.0 ? 0.0 : neighbor / total;
}

double mismatch_byte_hops(const CommMatrix& bytes, const topo::Topology& topo,
                          const topo::Placement& placement) {
  const std::size_t n = bytes.rows();
  check(placement.size() >= n, "placement smaller than matrix order");
  double cost = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < bytes.cols(); ++j)
      if (i != j && bytes(i, j) != 0)
        cost += static_cast<double>(bytes(i, j)) *
                static_cast<double>(
                    topo.hop_distance(placement[i], placement[j]));
  return cost;
}

double mismatch_byte_hops(const CommMatrix& bytes, const topo::Fabric& fabric,
                          const topo::Placement& placement) {
  const std::size_t n = bytes.rows();
  check(placement.size() >= n, "placement smaller than matrix order");
  double cost = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < bytes.cols(); ++j)
      if (i != j && bytes(i, j) != 0)
        cost += static_cast<double>(bytes(i, j)) *
                static_cast<double>(
                    fabric.hop_distance(placement[i], placement[j]));
  return cost;
}

std::vector<double> mismatch_by_link_class(const CommMatrix& bytes,
                                           const topo::Fabric& fabric,
                                           const topo::Placement& placement) {
  const std::size_t n = bytes.rows();
  check(placement.size() >= n, "placement smaller than matrix order");
  std::vector<double> per_class(
      static_cast<std::size_t>(fabric.num_link_classes()), 0.0);
  const double approach_hops = 2.0 * static_cast<double>(
      fabric.hierarchy().depth() - fabric.node_level());
  topo::Fabric::Route route;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < bytes.cols(); ++j) {
      if (i == j || bytes(i, j) == 0) continue;
      const int a = placement[i];
      const int b = placement[j];
      if (a == b) continue;  // zero hops, nothing to attribute
      const double v = static_cast<double>(bytes(i, j));
      if (fabric.same_node(a, b)) {
        per_class[static_cast<std::size_t>(fabric.pair_class(a, b))] +=
            v * static_cast<double>(fabric.hierarchy().hop_distance(a, b));
        continue;
      }
      fabric.distance_route(a, b, &route);
      for (int h = 0; h < route.n; ++h)
        per_class[static_cast<std::size_t>(
            fabric.link_class(route.links[h]))] += v;
      // PU<->NIC approach legs inside both endpoint nodes: charged to the
      // nic class so the entries sum exactly to the fabric hop total.
      per_class[0] += v * approach_hops;
    }
  }
  return per_class;
}

double treematch_gain(const CommMatrix& bytes, const topo::Topology& topo,
                      const topo::Placement& placement,
                      const net::CostModel& cost) {
  const std::size_t n = bytes.rows();
  if (n == 0 || bytes.sum() == 0) return 0.0;
  const double current = cost.pattern_cost(bytes, placement);
  if (current <= 0.0) return 0.0;
  // Same math as reorder::compute_reordering: TreeMatch assigns each role
  // (matrix row) to one of the slots the job already occupies; the
  // proposed placement executes role r on the leaf of its slot.
  const std::vector<int> role_to_slot =
      tm::treematch_slots(bytes, topo, placement);
  topo::Placement proposed(n);
  for (std::size_t role = 0; role < n; ++role)
    proposed[role] =
        placement[static_cast<std::size_t>(role_to_slot[role])];
  const double after = cost.pattern_cost(bytes, proposed);
  return after >= current ? 0.0 : 1.0 - after / current;
}

namespace {

std::vector<WindowMetrics> analyze_impl(const std::vector<FrameMatrix>& frames,
                                        const topo::Topology* topo,
                                        const topo::Fabric* fabric,
                                        const topo::Placement* placement) {
  std::vector<WindowMetrics> out;
  out.reserve(frames.size());
  std::span<const unsigned long> prev;
  for (const FrameMatrix& f : frames) {
    WindowMetrics m;
    m.window = f.window;
    m.t0_s = f.t0_s;
    m.t1_s = f.t1_s;
    for (unsigned long v : f.counts.flat()) m.msgs += v;
    for (unsigned long v : f.bytes.flat()) m.bytes += v;
    m.imbalance = load_imbalance(f.bytes);
    if (!prev.empty()) {
      m.cos_dist = cosine_distance(prev, f.bytes.flat());
      m.l1_dist = l1_distance(prev, f.bytes.flat());
      m.boundary = m.cos_dist > WindowSampler::kCosineBoundary ||
                   m.l1_dist > WindowSampler::kL1Boundary;
    }
    if (fabric != nullptr && placement != nullptr) {
      m.neighbor_frac =
          neighbor_affinity_fraction(f.bytes, fabric->hierarchy(), *placement);
      m.class_hops = mismatch_by_link_class(f.bytes, *fabric, *placement);
      m.mismatch_hops = 0.0;
      for (double h : m.class_hops) m.mismatch_hops += h;
    } else if (topo != nullptr && placement != nullptr) {
      m.neighbor_frac = neighbor_affinity_fraction(f.bytes, *topo, *placement);
      m.mismatch_hops = mismatch_byte_hops(f.bytes, *topo, *placement);
    } else {
      // Offline: pass annotated per-class columns through to the caller.
      m.class_hops = f.class_hops;
    }
    prev = f.bytes.flat();
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace

FrameTotals frame_totals(const Frame& frame) {
  FrameTotals tot;
  for (const FrameCell& c : frame.cells) {
    unsigned long cell_bytes = 0;
    for (int k = 0; k < kNumKinds; ++k) {
      tot.msgs += c.counts[k];
      cell_bytes += c.bytes[k];
    }
    tot.bytes += cell_bytes;
    if (cell_bytes > tot.top_peer_bytes ||
        (tot.top_peer < 0 && cell_bytes > 0)) {
      tot.top_peer = c.peer;
      tot.top_peer_bytes = cell_bytes;
    }
  }
  return tot;
}

std::vector<WindowMetrics> analyze_windows(
    const std::vector<FrameMatrix>& frames) {
  return analyze_impl(frames, nullptr, nullptr, nullptr);
}

std::vector<WindowMetrics> analyze_windows(
    const std::vector<FrameMatrix>& frames, const topo::Topology& topo,
    const topo::Placement& placement) {
  return analyze_impl(frames, &topo, nullptr, &placement);
}

std::vector<WindowMetrics> analyze_windows(
    const std::vector<FrameMatrix>& frames, const topo::Fabric& fabric,
    const topo::Placement& placement) {
  return analyze_impl(frames, nullptr, &fabric, &placement);
}

void annotate_link_class_hops(std::vector<FrameMatrix>& frames,
                              const topo::Fabric& fabric,
                              const topo::Placement& placement) {
  for (FrameMatrix& f : frames)
    f.class_hops = mismatch_by_link_class(f.bytes, fabric, placement);
}

void write_frames_csv(std::ostream& os,
                      const std::vector<FrameMatrix>& frames) {
  os << "window,t0_s,t1_s,src,dst,count,bytes\n";
  for (const FrameMatrix& f : frames) {
    bool any = false;
    for (std::size_t i = 0; i < f.bytes.rows(); ++i) {
      for (std::size_t j = 0; j < f.bytes.cols(); ++j) {
        if (f.counts(i, j) == 0 && f.bytes(i, j) == 0) continue;
        os << f.window << "," << f.t0_s << "," << f.t1_s << "," << i << ","
           << j << "," << f.counts(i, j) << "," << f.bytes(i, j) << "\n";
        any = true;
      }
    }
    if (!any)
      os << f.window << "," << f.t0_s << "," << f.t1_s << ",-1,-1,0,0\n";
    // Annotated per-link-class mismatch columns (src = -2, dst = class).
    // Byte-hop totals are sums of integer products, so the cast is exact
    // for any plausible magnitude.
    for (std::size_t c = 0; c < f.class_hops.size(); ++c)
      os << f.window << "," << f.t0_s << "," << f.t1_s << ",-2," << c << ",0,"
         << static_cast<unsigned long long>(f.class_hops[c] + 0.5) << "\n";
  }
}

void write_frames_csv_file(const std::string& path,
                           const std::vector<FrameMatrix>& frames) {
  std::ofstream os(path);
  check(os.good(), "cannot open frames csv for writing: " + path);
  write_frames_csv(os, frames);
  check(os.good(), "failed writing frames csv: " + path);
}

namespace {

/// Strict numeric cell parsers: the whole cell must parse and the value
/// must be finite ("nan"/"inf" cells are corrupt data, not numbers --
/// std::stod would happily accept them).
double parse_num(const std::string& cell, const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &used);
  } catch (const std::exception&) {
    fail(std::string("frames csv: bad ") + what + " cell: '" + cell + "'");
  }
  if (used != cell.size() || !std::isfinite(v))
    fail(std::string("frames csv: bad ") + what + " cell: '" + cell + "'");
  return v;
}

long parse_long(const std::string& cell, const char* what) {
  const double v = parse_num(cell, what);
  if (v != std::floor(v))
    fail(std::string("frames csv: non-integer ") + what + " cell: '" + cell +
         "'");
  return static_cast<long>(v);
}

}  // namespace

std::vector<FrameMatrix> read_frames_csv(const std::string& path, int order) {
  std::ifstream is(path);
  check(is.good(), "cannot open frames csv: " + path);
  std::string line;
  check(static_cast<bool>(std::getline(is, line)),
        "empty frames csv: " + path);
  check(line == "window,t0_s,t1_s,src,dst,count,bytes",
        "not a frames csv (bad header): " + path);

  struct Row {
    long window;
    double t0, t1;
    long src, dst;
    unsigned long count, bytes;
  };
  std::vector<Row> rows;
  long max_rank = -1;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> c;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) c.push_back(cell);
    check(c.size() == 7, "truncated frames csv row: " + line);
    Row r;
    r.window = parse_long(c[0], "window");
    r.t0 = parse_num(c[1], "t0_s");
    r.t1 = parse_num(c[2], "t1_s");
    r.src = parse_long(c[3], "src");
    r.dst = parse_long(c[4], "dst");
    const long count = parse_long(c[5], "count");
    const long bytes = parse_long(c[6], "bytes");
    check(count >= 0 && bytes >= 0, "negative traffic in frames csv: " + line);
    r.count = static_cast<unsigned long>(count);
    r.bytes = static_cast<unsigned long>(bytes);
    const bool empty_marker = r.src == -1 && r.dst == -1;
    const bool class_row = r.src == -2 && r.dst >= 0;
    check(empty_marker || class_row || (r.src >= 0 && r.dst >= 0),
          "bad src/dst in frames csv: " + line);
    if (!class_row) max_rank = std::max({max_rank, r.src, r.dst});
    rows.push_back(r);
  }
  check(!rows.empty(), "frames csv has a header but no data: " + path);

  std::size_t n = order > 0 ? static_cast<std::size_t>(order)
                            : static_cast<std::size_t>(max_rank + 1);
  if (n == 0) n = 1;  // all-empty windows: order unknown, pick the minimum
  check(max_rank < static_cast<long>(n), "frames csv rank exceeds order");

  std::vector<FrameMatrix> frames;
  for (const Row& r : rows) {
    if (frames.empty() || frames.back().window != r.window) {
      check(frames.empty() || frames.back().window < r.window,
            "frames csv windows out of order");
      FrameMatrix f;
      f.window = r.window;
      f.t0_s = r.t0;
      f.t1_s = r.t1;
      f.counts = CommMatrix::square(n);
      f.bytes = CommMatrix::square(n);
      frames.push_back(std::move(f));
    }
    if (r.src == -2) {
      auto& hops = frames.back().class_hops;
      const auto cls = static_cast<std::size_t>(r.dst);
      if (hops.size() <= cls) hops.resize(cls + 1, 0.0);
      hops[cls] += static_cast<double>(r.bytes);
    } else if (r.src >= 0) {
      frames.back().counts(static_cast<std::size_t>(r.src),
                           static_cast<std::size_t>(r.dst)) += r.count;
      frames.back().bytes(static_cast<std::size_t>(r.src),
                          static_cast<std::size_t>(r.dst)) += r.bytes;
    }
  }
  return frames;
}

}  // namespace mpim::introspect
