// Windowed communication snapshots: the time-resolved half of the
// introspection library.
//
// A WindowSampler chops a rank's virtual timeline into fixed windows
// (index = floor(t / window_s), a *global* grid shared by every rank
// because all clocks start at 0) and accumulates, per window, the
// per-peer message counts and bytes the rank sent, split by traffic
// class. When a record arrives for a later window the current window is
// closed into a Frame; windows the rank sat silent through are emitted
// as empty frames so the grid stays gap-free (the phase detector needs
// burst -> silence transitions to be visible).
//
// Frames are delta-encoded: a Frame's cells hold only the traffic of
// *that* window (the increments against the previous frame), never
// cumulative totals -- reconstructing a running matrix is a prefix sum,
// and a timeline heatmap is just the frames themselves. The frame store
// is a bounded ring: when full, the oldest frame is folded into the
// `evicted` totals and counted, never silently lost.
//
// Determinism: everything here is driven by the virtual clock carried in
// the packet records; the sampler performs no host-time reads and no
// MPI traffic of its own, so enabling it cannot perturb simulated time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace mpim::introspect {

inline constexpr int kNumKinds = 3;  ///< p2p, coll, osc (tool never recorded)

/// Traffic one peer received from this rank during one window, by class.
struct FrameCell {
  int peer = -1;
  unsigned long counts[kNumKinds] = {0, 0, 0};
  unsigned long bytes[kNumKinds] = {0, 0, 0};
};

/// One closed window of the rank's outgoing traffic (sparse: only peers
/// actually written to appear in `cells`).
struct Frame {
  long window = 0;  ///< global window index: floor(t / window_s)
  double t0_s = 0.0;
  double t1_s = 0.0;
  bool boundary = false;  ///< phase boundary detected at this frame
  std::vector<FrameCell> cells;
};

class WindowSampler {
 public:
  /// `npeers` is the order of the monitored communicator; `max_frames`
  /// bounds the ring (oldest frames are evicted into totals beyond it).
  WindowSampler(int npeers, double window_s, std::size_t max_frames);

  /// Records one sent message at virtual time `t_s` to group rank `peer`
  /// of traffic class `kind_bit` (0 = p2p, 1 = coll, 2 = osc). Closes and
  /// emits any windows that elapsed since the previous record.
  void record(double t_s, int peer, int kind_bit, unsigned long bytes);

  /// Closes every window that elapsed before `t_s`, plus the window
  /// containing `t_s` when it already holds data (so suspend/stop capture
  /// the partial window). Flushing again without new records is a no-op:
  /// silence is only recorded once full windows actually elapse.
  void flush(double t_s);

  /// Drops all frames and accumulated state (MPI_M_reset semantics); the
  /// window grid restarts at the next record.
  void clear();

  double window_s() const { return window_s_; }
  int npeers() const { return npeers_; }
  const std::deque<Frame>& frames() const { return frames_; }
  std::uint64_t frames_closed() const { return frames_closed_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t phase_boundaries() const { return phase_boundaries_; }

  /// Cumulative per-peer bytes (all kinds) over every frame ever closed,
  /// including evicted ones -- the analyzer's long-horizon matrix row.
  const std::vector<unsigned long>& total_bytes() const {
    return total_bytes_;
  }

  /// Called after each frame is closed (boundary flag already set). Runs
  /// on the recording thread; keep it allocation-light.
  using FrameCallback = std::function<void(const Frame&)>;
  void set_frame_callback(FrameCallback cb) { on_frame_ = std::move(cb); }

  /// Inter-window distance thresholds above which a frame is flagged as a
  /// phase boundary (cosine distance; L1 distance normalized by the two
  /// windows' total volume).
  static constexpr double kCosineBoundary = 0.35;
  static constexpr double kL1Boundary = 0.5;

 private:
  void close_current_window();
  void roll_to(long window);

  int npeers_;
  double window_s_;
  std::size_t max_frames_;

  bool open_ = false;   ///< a current window exists
  long current_ = 0;    ///< index of the open window
  /// Dense accumulators of the open window, [kind][peer].
  std::vector<unsigned long> acc_counts_[kNumKinds];
  std::vector<unsigned long> acc_bytes_[kNumKinds];
  bool touched_ = false;

  /// Per-peer byte row of the previously closed window (kinds summed),
  /// the phase detector's comparison vector.
  std::vector<unsigned long> prev_row_;
  bool have_prev_ = false;

  std::deque<Frame> frames_;
  std::vector<unsigned long> total_bytes_;
  std::uint64_t frames_closed_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t phase_boundaries_ = 0;
  FrameCallback on_frame_;
};

}  // namespace mpim::introspect
