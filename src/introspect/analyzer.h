// Online analyzer over windowed snapshot frames: per-window derived
// metrics (load imbalance, neighbor affinity, topology mismatch cost,
// estimated TreeMatch gain), the inter-window matrix distances the phase
// detector thresholds, and the frames CSV format the timeline tools
// exchange.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "introspect/snapshot.h"
#include "netmodel/cost_model.h"
#include "support/matrix.h"
#include "topo/topology.h"

namespace mpim::introspect {

// --- matrix/vector distances -------------------------------------------------

/// Cosine distance in [0, 2]: 1 - dot/(|a||b|). Conventions chosen for
/// phase detection: two zero vectors are identical (0); a zero vector
/// against a non-zero one is maximally different (1).
double cosine_distance(std::span<const unsigned long> a,
                       std::span<const unsigned long> b);

/// L1 distance normalized by the combined mass, in [0, 1]:
/// sum|a_i - b_i| / (sum a_i + sum b_i). Two zero vectors give 0.
double l1_distance(std::span<const unsigned long> a,
                   std::span<const unsigned long> b);

// --- per-matrix derived metrics ----------------------------------------------

/// Send-byte load imbalance: max row sum / mean row sum (>= 1), or 0 for
/// an all-zero matrix. 1.0 means perfectly balanced senders.
double load_imbalance(const CommMatrix& bytes);

/// Fraction of off-diagonal bytes whose endpoints sit on deepest-level
/// neighbor leaves (tree hop distance <= 2, e.g. same core pair/socket),
/// in [0, 1]; 0 when the matrix is empty.
double neighbor_affinity_fraction(const CommMatrix& bytes,
                                  const topo::Topology& topo,
                                  const topo::Placement& placement);

/// Topology mismatch cost: sum over pairs of bytes(i,j) * tree hop
/// distance between the leaves of i and j.
double mismatch_byte_hops(const CommMatrix& bytes, const topo::Topology& topo,
                          const topo::Placement& placement);

/// Fabric form: bytes are weighed by the fabric hop distance (network
/// route length plus the PU<->NIC approach legs), so on fat-tree and
/// dragonfly the metric sees how deep each pair's route actually goes.
/// On a tree fabric this equals the Topology overload exactly.
double mismatch_byte_hops(const CommMatrix& bytes, const topo::Fabric& fabric,
                          const topo::Placement& placement);

/// Decomposition of the fabric mismatch by link class, one entry per
/// fabric.num_link_classes(): every network hop of an inter-node route
/// credits its link's class, the PU<->NIC approach legs credit the nic
/// class (index 0), and same-node pairs credit their intra-node locality
/// class with their full hop weight. The entries sum exactly to
/// mismatch_byte_hops(bytes, fabric, placement).
std::vector<double> mismatch_by_link_class(const CommMatrix& bytes,
                                           const topo::Fabric& fabric,
                                           const topo::Placement& placement);

/// Estimated fractional cost reduction TreeMatch would deliver on this
/// matrix from the current placement, in [0, 1] (0: already optimal or no
/// traffic). Runs the real TreeMatch kernel plus the modeled pattern cost.
double treematch_gain(const CommMatrix& bytes, const topo::Topology& topo,
                      const topo::Placement& placement,
                      const net::CostModel& cost);

// --- single-frame totals -----------------------------------------------------

/// Scalar summary of one sampler frame (all traffic kinds summed). The
/// streaming plane stages these instead of whole sparse matrices.
struct FrameTotals {
  unsigned long msgs = 0;
  unsigned long bytes = 0;
  int top_peer = -1;  ///< peer receiving the most bytes; -1 if none
  unsigned long top_peer_bytes = 0;
};

FrameTotals frame_totals(const Frame& frame);

// --- window sequences --------------------------------------------------------

/// One gathered window: the full per-window communication matrices (what
/// MPI_M_get_frames returns, or a frames CSV parses into).
struct FrameMatrix {
  long window = 0;
  double t0_s = 0.0;
  double t1_s = 0.0;
  CommMatrix counts;
  CommMatrix bytes;
  /// Per-link-class mismatch byte-hops of this window (see
  /// mismatch_by_link_class); empty when never annotated (pre-fabric
  /// CSVs). Survives the frames CSV round trip.
  std::vector<double> class_hops;
};

/// Fills every frame's class_hops from its byte matrix (the per-window
/// mismatch_by_link_class), so the breakdown rides along in the frames
/// CSV and offline tools can render it without the fabric.
void annotate_link_class_hops(std::vector<FrameMatrix>& frames,
                              const topo::Fabric& fabric,
                              const topo::Placement& placement);

/// Per-window metrics of a gathered sequence. Topology-dependent fields
/// are only filled by the overload taking a topology (offline tools run
/// without one and leave them at -1).
struct WindowMetrics {
  long window = 0;
  double t0_s = 0.0;
  double t1_s = 0.0;
  unsigned long msgs = 0;
  unsigned long bytes = 0;
  double imbalance = 0.0;
  /// Distances vs the previous window's byte matrix; -1 on the first
  /// window of a sequence (no reference to compare against).
  double cos_dist = -1.0;
  double l1_dist = -1.0;
  bool boundary = false;
  double neighbor_frac = -1.0;
  double mismatch_hops = -1.0;
  /// Per-link-class mismatch byte-hops; empty unless the fabric overload
  /// ran or the frames carried annotated columns (see FrameMatrix).
  std::vector<double> class_hops;
};

/// Analyzes a window sequence: totals, imbalance, inter-window distances
/// and phase boundaries (thresholds as in WindowSampler).
std::vector<WindowMetrics> analyze_windows(
    const std::vector<FrameMatrix>& frames);

/// Same, plus the topology-dependent per-window metrics.
std::vector<WindowMetrics> analyze_windows(
    const std::vector<FrameMatrix>& frames, const topo::Topology& topo,
    const topo::Placement& placement);

/// Fabric form: mismatch_hops uses fabric hop distances and class_hops is
/// filled with the per-link-class decomposition.
std::vector<WindowMetrics> analyze_windows(
    const std::vector<FrameMatrix>& frames, const topo::Fabric& fabric,
    const topo::Placement& placement);

// --- frames CSV --------------------------------------------------------------

/// Header: "window,t0_s,t1_s,src,dst,count,bytes". One row per non-zero
/// (src, dst) cell; empty windows emit a single row with src = dst = -1
/// and zero traffic so the grid survives the round trip. Annotated frames
/// additionally emit one row per link class with src = -2, dst = the
/// class index and the class byte-hops in the bytes column.
void write_frames_csv(std::ostream& os, const std::vector<FrameMatrix>& frames);
void write_frames_csv_file(const std::string& path,
                           const std::vector<FrameMatrix>& frames);

/// Parses a frames CSV. Throws mpim::Error on a missing/empty file, a bad
/// header, a truncated row, or a non-finite/non-numeric cell. The matrix
/// order is inferred as 1 + max(src, dst) unless `order` > 0 forces it.
std::vector<FrameMatrix> read_frames_csv(const std::string& path,
                                         int order = 0);

}  // namespace mpim::introspect
