#include "introspect/snapshot.h"

#include <cmath>

#include "introspect/analyzer.h"
#include "support/error.h"

namespace mpim::introspect {

WindowSampler::WindowSampler(int npeers, double window_s,
                             std::size_t max_frames)
    : npeers_(npeers), window_s_(window_s), max_frames_(max_frames) {
  check(npeers >= 1, "sampler needs at least one peer");
  check(window_s > 0.0, "sampler window must be positive");
  check(max_frames >= 1, "sampler needs room for at least one frame");
  for (int k = 0; k < kNumKinds; ++k) {
    acc_counts_[k].assign(static_cast<std::size_t>(npeers), 0ul);
    acc_bytes_[k].assign(static_cast<std::size_t>(npeers), 0ul);
  }
  prev_row_.assign(static_cast<std::size_t>(npeers), 0ul);
  total_bytes_.assign(static_cast<std::size_t>(npeers), 0ul);
}

void WindowSampler::close_current_window() {
  Frame f;
  f.window = current_;
  f.t0_s = static_cast<double>(current_) * window_s_;
  f.t1_s = static_cast<double>(current_ + 1) * window_s_;

  std::vector<unsigned long> row(static_cast<std::size_t>(npeers_), 0ul);
  if (touched_) {
    for (int p = 0; p < npeers_; ++p) {
      const auto ip = static_cast<std::size_t>(p);
      FrameCell cell;
      cell.peer = p;
      bool any = false;
      for (int k = 0; k < kNumKinds; ++k) {
        cell.counts[k] = acc_counts_[k][ip];
        cell.bytes[k] = acc_bytes_[k][ip];
        if (cell.counts[k] || cell.bytes[k]) any = true;
        row[ip] += cell.bytes[k];
        total_bytes_[ip] += cell.bytes[k];
        acc_counts_[k][ip] = 0;
        acc_bytes_[k][ip] = 0;
      }
      if (any) f.cells.push_back(cell);
    }
    touched_ = false;
  }

  // Phase detection on the local byte row: the first window with traffic
  // after a silent history is a boundary too (have_prev_ starts false so
  // the very first frame never counts -- there is no "previous phase").
  if (have_prev_) {
    const double cos_d = cosine_distance(prev_row_, row);
    const double l1_d = l1_distance(prev_row_, row);
    f.boundary = cos_d > kCosineBoundary || l1_d > kL1Boundary;
  }
  prev_row_ = row;
  have_prev_ = true;
  if (f.boundary) ++phase_boundaries_;
  ++frames_closed_;

  frames_.push_back(std::move(f));
  if (frames_.size() > max_frames_) {
    frames_.pop_front();
    ++frames_dropped_;
  }
  if (on_frame_) on_frame_(frames_.back());
}

void WindowSampler::roll_to(long window) {
  if (!open_) {
    current_ = window;
    open_ = true;
    return;
  }
  while (current_ < window) {
    close_current_window();
    ++current_;
  }
}

void WindowSampler::record(double t_s, int peer, int kind_bit,
                           unsigned long bytes) {
  check(peer >= 0 && peer < npeers_, "sampler peer out of range");
  check(kind_bit >= 0 && kind_bit < kNumKinds, "sampler kind out of range");
  const long w = static_cast<long>(std::floor(t_s / window_s_));
  roll_to(w);
  const auto ip = static_cast<std::size_t>(peer);
  acc_counts_[kind_bit][ip] += 1;
  acc_bytes_[kind_bit][ip] += bytes;
  touched_ = true;
}

void WindowSampler::flush(double t_s) {
  if (!open_) return;
  const long w = static_cast<long>(std::floor(t_s / window_s_));
  roll_to(w);
  // The window containing t_s is closed early only when it holds data, so
  // a suspend captures the partial window but repeated flushes without new
  // records never manufacture empty frames (or phony phase boundaries).
  if (touched_) {
    close_current_window();
    ++current_;
  }
}

void WindowSampler::clear() {
  frames_.clear();
  open_ = false;
  touched_ = false;
  have_prev_ = false;
  frames_closed_ = 0;
  frames_dropped_ = 0;
  phase_boundaries_ = 0;
  for (int k = 0; k < kNumKinds; ++k) {
    std::fill(acc_counts_[k].begin(), acc_counts_[k].end(), 0ul);
    std::fill(acc_bytes_[k].begin(), acc_bytes_[k].end(), 0ul);
  }
  std::fill(prev_row_.begin(), prev_row_.end(), 0ul);
  std::fill(total_bytes_.begin(), total_bytes_.end(), 0ul);
}

}  // namespace mpim::introspect
