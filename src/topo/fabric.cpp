#include "topo/fabric.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "support/error.h"

namespace mpim::topo {

namespace {

int ipow(int base, int exp) {
  int v = 1;
  for (int i = 0; i < exp; ++i) v *= base;
  return v;
}

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

const char* fabric_kind_name(FabricKind kind) {
  switch (kind) {
    case FabricKind::tree: return "tree";
    case FabricKind::fattree: return "fattree";
    case FabricKind::dragonfly: return "dragonfly";
  }
  return "?";
}

std::string FabricSpec::describe() const {
  switch (kind) {
    case FabricKind::tree:
      return "tree";
    case FabricKind::fattree:
      return "fattree:" + std::to_string(ft_k) + "," +
             std::to_string(ft_levels) + "," + std::to_string(ft_osub);
    case FabricKind::dragonfly:
      return "dragonfly:" + std::to_string(df_a) + "," +
             std::to_string(df_g) + "," + std::to_string(df_h) +
             (df_valiant ? ",valiant" : "");
  }
  return "?";
}

namespace {

std::string trimmed_lower(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  std::string out = s.substr(b, e - b);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Whole-field decimal int: no sign, no blanks, no trailing text.
bool parse_int_field(const std::string& f, int* out) {
  if (f.empty()) return false;
  const char* first = f.data();
  const char* last = f.data() + f.size();
  int v = 0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return false;
  *out = v;
  return true;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

constexpr int kMaxFabricNodes = 65536;

}  // namespace

std::optional<FabricSpec> parse_fabric_spec(const std::string& text) {
  const std::string t = trimmed_lower(text);
  const std::size_t colon = t.find(':');
  const std::string head = colon == std::string::npos ? t : t.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string() : t.substr(colon + 1);

  FabricSpec spec;
  if (head == "tree") {
    if (colon != std::string::npos) return std::nullopt;  // "tree:..." is junk
    spec.kind = FabricKind::tree;
    return spec;
  }
  if (head == "fattree") {
    if (colon == std::string::npos) return std::nullopt;
    const auto fields = split_commas(rest);
    if (fields.size() != 3) return std::nullopt;
    if (!parse_int_field(fields[0], &spec.ft_k) ||
        !parse_int_field(fields[1], &spec.ft_levels) ||
        !parse_int_field(fields[2], &spec.ft_osub))
      return std::nullopt;
    if (spec.ft_k < 2 || spec.ft_k > 64) return std::nullopt;
    if (spec.ft_levels < 1 || spec.ft_levels > 4) return std::nullopt;
    if (spec.ft_osub < 1 || spec.ft_osub > 64) return std::nullopt;
    long nodes = 1;
    for (int i = 0; i < spec.ft_levels; ++i) nodes *= spec.ft_k;
    if (nodes > kMaxFabricNodes) return std::nullopt;
    spec.kind = FabricKind::fattree;
    return spec;
  }
  if (head == "dragonfly") {
    if (colon == std::string::npos) return std::nullopt;
    auto fields = split_commas(rest);
    if (fields.size() == 4) {
      if (fields[3] == "valiant")
        spec.df_valiant = true;
      else if (fields[3] != "minimal")
        return std::nullopt;
      fields.pop_back();
    }
    if (fields.size() != 3) return std::nullopt;
    if (!parse_int_field(fields[0], &spec.df_a) ||
        !parse_int_field(fields[1], &spec.df_g) ||
        !parse_int_field(fields[2], &spec.df_h))
      return std::nullopt;
    if (spec.df_a < 1 || spec.df_a > 64) return std::nullopt;
    if (spec.df_g < 1 || spec.df_g > 256) return std::nullopt;
    if (spec.df_h < 1 || spec.df_h > 32) return std::nullopt;
    // Every remote group needs a global port somewhere in the group.
    if (spec.df_g > 1 && spec.df_g - 1 > spec.df_a * spec.df_h)
      return std::nullopt;
    const long nodes =
        static_cast<long>(spec.df_a) * spec.df_g * spec.df_h;
    if (nodes > kMaxFabricNodes) return std::nullopt;
    spec.kind = FabricKind::dragonfly;
    return spec;
  }
  return std::nullopt;
}

// --- Fabric base -----------------------------------------------------------

Fabric::Fabric(FabricSpec spec, Topology hierarchy, int node_level,
               int num_network_classes,
               std::vector<std::string> network_class_names)
    : spec_(std::move(spec)),
      hierarchy_(std::move(hierarchy)),
      node_level_(node_level),
      num_network_classes_(num_network_classes),
      class_names_(std::move(network_class_names)) {
  check(node_level_ >= 1 && node_level_ <= hierarchy_.depth(),
        "fabric node level out of hierarchy range");
  check(static_cast<int>(class_names_.size()) == num_network_classes_,
        "one name per network link class required");
  num_nodes_ = hierarchy_.num_leaves() / hierarchy_.subtree_leaves(node_level_);
  // Intra-node locality classes, one per hierarchy level at or below the
  // node: inter-socket, intra-socket, ..., same PU.
  for (int cad = node_level_; cad <= hierarchy_.depth(); ++cad) {
    if (cad == hierarchy_.depth())
      class_names_.push_back("same-pu");
    else
      class_names_.push_back("intra-" + hierarchy_.level_name(cad - 1));
  }
}

int Fabric::add_link(int cls) {
  check(cls >= 0 && cls < num_network_classes_,
        "link class out of network-class range");
  link_class_.push_back(cls);
  return static_cast<int>(link_class_.size()) - 1;
}

const std::string& Fabric::link_class_name(int cls) const {
  check(cls >= 0 && cls < num_link_classes(), "link class out of range");
  return class_names_[static_cast<std::size_t>(cls)];
}

int Fabric::link_class(int link) const {
  check(link >= 0 && link < num_links(), "link id out of range");
  return link_class_[static_cast<std::size_t>(link)];
}

int Fabric::pair_class(int leaf_a, int leaf_b) const {
  const int cad = hierarchy_.common_ancestor_depth(leaf_a, leaf_b);
  if (cad >= node_level_) return num_network_classes_ + (cad - node_level_);
  // Tree fabrics keep the historical depth-indexed lookup (class == common
  // ancestor depth, so inter-node == class 0); routed fabrics cost
  // inter-node pairs per route.
  return single_class_paths() ? cad : -1;
}

int Fabric::hop_distance(int leaf_a, int leaf_b) const {
  if (leaf_a == leaf_b) {
    check(leaf_a >= 0 && leaf_a < num_leaves(), "leaf index out of range");
    return 0;
  }
  if (same_node(leaf_a, leaf_b)) return hierarchy_.hop_distance(leaf_a, leaf_b);
  Route r;
  distance_route(leaf_a, leaf_b, &r);
  return r.n + 2 * (hierarchy_.depth() - node_level_);
}

std::string Fabric::describe() const {
  return std::string(fabric_kind_name(kind())) + " fabric: " +
         hierarchy_.describe() + ", " + std::to_string(num_nodes_) +
         " nodes, " + std::to_string(num_links()) + " links in " +
         std::to_string(num_link_classes()) + " classes";
}

// --- TreeFabric ------------------------------------------------------------

namespace {

FabricSpec tree_spec_for(const Topology& hierarchy) {
  FabricSpec spec;
  spec.kind = FabricKind::tree;
  if (hierarchy.depth() == 3) {
    spec.sockets = hierarchy.arities()[1];
    spec.cores = hierarchy.arities()[2];
  }
  return spec;
}

}  // namespace

TreeFabric::TreeFabric(Topology hierarchy)
    : Fabric(tree_spec_for(hierarchy), std::move(hierarchy), /*node_level=*/1,
             /*num_network_classes=*/1, {"inter-node"}) {
  for (int n = 0; n < num_nodes_; ++n) add_link(0);  // tx ports [0, N)
  for (int n = 0; n < num_nodes_; ++n) add_link(0);  // rx ports [N, 2N)
}

void TreeFabric::route(int leaf_src, int leaf_dst, Route* out) const {
  out->n = 0;
  const int s = node_of(leaf_src);
  const int t = node_of(leaf_dst);
  if (s == t) return;
  out->links[out->n++] = s;               // source node tx port
  out->links[out->n++] = num_nodes_ + t;  // destination node rx port
}

// --- FatTreeFabric ---------------------------------------------------------

namespace {

Topology fattree_hierarchy(int k, int levels, int sockets, int cores) {
  std::vector<int> arities;
  std::vector<std::string> names;
  for (int d = 0; d < levels; ++d) {
    arities.push_back(k);
    names.push_back(d == levels - 1 ? "node" : "pod");
  }
  arities.push_back(sockets);
  names.push_back("socket");
  arities.push_back(cores);
  names.push_back("core");
  return Topology(std::move(arities), std::move(names));
}

std::vector<std::string> fattree_class_names(int levels) {
  std::vector<std::string> names = {"nic"};
  for (int d = 1; d < levels; ++d)
    names.push_back("tier" + std::to_string(d));
  return names;
}

FabricSpec fattree_spec(int k, int levels, int osub, int sockets, int cores) {
  FabricSpec spec;
  spec.kind = FabricKind::fattree;
  spec.ft_k = k;
  spec.ft_levels = levels;
  spec.ft_osub = osub;
  spec.sockets = sockets;
  spec.cores = cores;
  return spec;
}

}  // namespace

FatTreeFabric::FatTreeFabric(int k, int levels, int osub, int sockets,
                             int cores)
    : Fabric(fattree_spec(k, levels, osub, sockets, cores),
             fattree_hierarchy(k, levels, sockets, cores),
             /*node_level=*/levels, /*num_network_classes=*/levels,
             fattree_class_names(levels)),
      k_(k),
      levels_(levels),
      width_(std::max(1, k / osub)) {
  check(k >= 2, "fat-tree needs k >= 2");
  check(levels >= 1, "fat-tree needs at least one switch level");
  check(osub >= 1, "fat-tree oversubscription must be >= 1");
  for (int n = 0; n < num_nodes_; ++n) add_link(0);  // nic up [0, N)
  for (int n = 0; n < num_nodes_; ++n) add_link(0);  // nic down [N, 2N)
  up_base_.assign(static_cast<std::size_t>(levels_), 0);
  down_base_.assign(static_cast<std::size_t>(levels_), 0);
  for (int d = 1; d < levels_; ++d) {
    const int vertices = ipow(k_, d);
    up_base_[static_cast<std::size_t>(d)] = num_links();
    for (int i = 0; i < vertices * width_; ++i) add_link(d);
    down_base_[static_cast<std::size_t>(d)] = num_links();
    for (int i = 0; i < vertices * width_; ++i) add_link(d);
  }
}

FatTreeFabric::FatTreeFabric(const FabricSpec& spec)
    : FatTreeFabric(spec.ft_k, spec.ft_levels, spec.ft_osub, spec.sockets,
                    spec.cores) {}

int FatTreeFabric::node_tree_ancestor(int node, int d) const {
  return node / ipow(k_, levels_ - d);
}

int FatTreeFabric::up_link(int d, int vertex, int parallel) const {
  return up_base_[static_cast<std::size_t>(d)] + vertex * width_ + parallel;
}

int FatTreeFabric::down_link(int d, int vertex, int parallel) const {
  return down_base_[static_cast<std::size_t>(d)] + vertex * width_ + parallel;
}

void FatTreeFabric::route(int leaf_src, int leaf_dst, Route* out) const {
  out->n = 0;
  const int s = node_of(leaf_src);
  const int t = node_of(leaf_dst);
  if (s == t) return;
  // Deepest common ancestor of the two nodes in the switch tree.
  int cadn = levels_;
  int span = 1;
  while (s / span != t / span) {
    span *= k_;
    --cadn;
  }
  // D-mod-k: every switch on the up path spreads by destination node.
  const int parallel = t % width_;
  out->links[out->n++] = s;  // nic up
  for (int d = levels_ - 1; d > cadn; --d)
    out->links[out->n++] = up_link(d, node_tree_ancestor(s, d), parallel);
  for (int d = cadn + 1; d < levels_; ++d)
    out->links[out->n++] = down_link(d, node_tree_ancestor(t, d), parallel);
  out->links[out->n++] = num_nodes_ + t;  // nic down
}

// --- DragonflyFabric -------------------------------------------------------

namespace {

Topology dragonfly_hierarchy(int a, int g, int h, int sockets, int cores) {
  return Topology({g, a, h, sockets, cores},
                  {"group", "router", "node", "socket", "core"});
}

FabricSpec dragonfly_spec(int a, int g, int h, bool valiant, int sockets,
                          int cores) {
  FabricSpec spec;
  spec.kind = FabricKind::dragonfly;
  spec.df_a = a;
  spec.df_g = g;
  spec.df_h = h;
  spec.df_valiant = valiant;
  spec.sockets = sockets;
  spec.cores = cores;
  return spec;
}

}  // namespace

DragonflyFabric::DragonflyFabric(int a, int g, int h, bool valiant,
                                 int sockets, int cores)
    : Fabric(dragonfly_spec(a, g, h, valiant, sockets, cores),
             dragonfly_hierarchy(a, g, h, sockets, cores),
             /*node_level=*/3, /*num_network_classes=*/3,
             {"nic", "local", "global"}),
      a_(a),
      g_(g),
      h_(h),
      valiant_(valiant) {
  check(a >= 1 && g >= 1 && h >= 1, "degenerate dragonfly shape");
  check(g == 1 || g - 1 <= a * h,
        "dragonfly: g-1 global links per group need g-1 <= a*h ports");
  for (int n = 0; n < num_nodes_; ++n) add_link(0);  // nic up [0, N)
  for (int n = 0; n < num_nodes_; ++n) add_link(0);  // nic down [N, 2N)
  local_base_ = num_links();
  for (int i = 0; i < g_ * a_ * (a_ - 1); ++i) add_link(1);
  global_base_ = num_links();
  for (int i = 0; i < g_ * (g_ - 1); ++i) add_link(2);
}

DragonflyFabric::DragonflyFabric(const FabricSpec& spec)
    : DragonflyFabric(spec.df_a, spec.df_g, spec.df_h, spec.df_valiant,
                      spec.sockets, spec.cores) {}

int DragonflyFabric::local_link(int group, int from_router,
                                int to_router) const {
  const int slot = to_router < from_router ? to_router : to_router - 1;
  return local_base_ + group * a_ * (a_ - 1) + from_router * (a_ - 1) + slot;
}

int DragonflyFabric::global_link(int from_group, int to_group) const {
  const int offset = (to_group - from_group + g_) % g_ - 1;
  return global_base_ + from_group * (g_ - 1) + offset;
}

int DragonflyFabric::gateway_router(int from_group, int to_group) const {
  const int offset = (to_group - from_group + g_) % g_ - 1;
  return offset / h_;
}

int DragonflyFabric::landing_router(int from_group, int to_group) const {
  // Symmetric wiring: the cable lands at the router owning the reverse link.
  return gateway_router(to_group, from_group);
}

void DragonflyFabric::minimal_between(int src_node, int dst_node,
                                      Route* out) const {
  const int gs = src_node / (a_ * h_);
  const int gt = dst_node / (a_ * h_);
  const int rs = (src_node / h_) % a_;
  const int rt = (dst_node / h_) % a_;
  if (gs == gt) {
    if (rs != rt) out->links[out->n++] = local_link(gs, rs, rt);
    return;
  }
  const int gw = gateway_router(gs, gt);
  if (rs != gw) out->links[out->n++] = local_link(gs, rs, gw);
  out->links[out->n++] = global_link(gs, gt);
  const int land = landing_router(gs, gt);
  if (land != rt) out->links[out->n++] = local_link(gt, land, rt);
}

void DragonflyFabric::route(int leaf_src, int leaf_dst, Route* out) const {
  out->n = 0;
  const int s = node_of(leaf_src);
  const int t = node_of(leaf_dst);
  if (s == t) return;
  out->links[out->n++] = s;  // nic up
  const int gs = s / (a_ * h_);
  const int gt = t / (a_ * h_);
  bool routed = false;
  if (valiant_ && gs != gt && g_ > 2) {
    // One-hop Valiant: a deterministic hash of the node pair spreads
    // adversarial group-to-group traffic over intermediate groups.
    const unsigned mix = static_cast<unsigned>(s) * 2654435761u +
                         static_cast<unsigned>(t) * 40503u + 0x9e37u;
    const int gv = static_cast<int>(mix % static_cast<unsigned>(g_));
    if (gv != gs && gv != gt) {
      const int rs = (s / h_) % a_;
      const int rt = (t / h_) % a_;
      const int gw1 = gateway_router(gs, gv);
      if (rs != gw1) out->links[out->n++] = local_link(gs, rs, gw1);
      out->links[out->n++] = global_link(gs, gv);
      const int mid = landing_router(gs, gv);
      const int gw2 = gateway_router(gv, gt);
      if (mid != gw2) out->links[out->n++] = local_link(gv, mid, gw2);
      out->links[out->n++] = global_link(gv, gt);
      const int land = landing_router(gv, gt);
      if (land != rt) out->links[out->n++] = local_link(gt, land, rt);
      routed = true;
    }
  }
  if (!routed) minimal_between(s, t, out);
  out->links[out->n++] = num_nodes_ + t;  // nic down
}

void DragonflyFabric::distance_route(int leaf_src, int leaf_dst,
                                     Route* out) const {
  out->n = 0;
  const int s = node_of(leaf_src);
  const int t = node_of(leaf_dst);
  if (s == t) return;
  out->links[out->n++] = s;  // nic up
  minimal_between(s, t, out);
  out->links[out->n++] = num_nodes_ + t;  // nic down
}

// --- factories -------------------------------------------------------------

std::shared_ptr<const Fabric> make_tree_fabric(Topology hierarchy) {
  return std::make_shared<TreeFabric>(std::move(hierarchy));
}

std::shared_ptr<const Fabric> make_fabric(const FabricSpec& spec,
                                          int min_leaves) {
  check(min_leaves >= 1, "fabric needs at least one processing unit");
  const int per_node = spec.sockets * spec.cores;
  switch (spec.kind) {
    case FabricKind::tree: {
      const int nodes = std::max(1, ceil_div(min_leaves, per_node));
      return std::make_shared<TreeFabric>(
          Topology::cluster(nodes, spec.sockets, spec.cores));
    }
    case FabricKind::fattree: {
      const int nodes = ipow(spec.ft_k, spec.ft_levels);
      const int cores = std::max(
          spec.cores, ceil_div(min_leaves, nodes * spec.sockets));
      return std::make_shared<FatTreeFabric>(spec.ft_k, spec.ft_levels,
                                             spec.ft_osub, spec.sockets,
                                             cores);
    }
    case FabricKind::dragonfly: {
      const int nodes = spec.df_a * spec.df_g * spec.df_h;
      const int cores = std::max(
          spec.cores, ceil_div(min_leaves, nodes * spec.sockets));
      return std::make_shared<DragonflyFabric>(spec.df_a, spec.df_g,
                                               spec.df_h, spec.df_valiant,
                                               spec.sockets, cores);
    }
  }
  check(false, "unknown fabric kind");
  return nullptr;
}

}  // namespace mpim::topo
