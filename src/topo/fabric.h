// Fabric abstraction over the machine's network.
//
// A Fabric is the pair of (a) the locality *hierarchy* -- the balanced
// Topology tree TreeMatch partitions against and whose leaves are the
// processing units ranks are placed on -- and (b) the *network* between
// compute nodes: a set of directed links with link classes (NIC ports,
// fat-tree trunk tiers, dragonfly local/global cables) and a deterministic
// routing function enumerating the links every inter-node message
// traverses. The cost model (src/netmodel) attaches Hockney (alpha, beta)
// parameters per link class and the engine reserves per-link busy time
// along routes, so oversubscribed trunks and shared global links contend
// the way real fabrics do.
//
// Three implementations:
//   - TreeFabric: the historical balanced tree. One tx and one rx port per
//     node, every inter-node route is [tx(src), rx(dst)]; semantics (and
//     engine clocks) are bit-identical to the pre-fabric code.
//   - FatTreeFabric(k, l, osub): k-ary fat-tree with l switch levels,
//     `osub`:1 oversubscription (each switch has max(1, k/osub) parallel
//     uplinks per direction) and deterministic D-mod-k up-path selection.
//   - DragonflyFabric(a, g, h): 1D dragonfly, g groups of a routers with h
//     hosts and h global ports each, all-to-all global links between
//     groups; minimal routing by default, deterministic one-hop Valiant
//     when requested.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace mpim::topo {

enum class FabricKind { tree, fattree, dragonfly };

const char* fabric_kind_name(FabricKind kind);

/// Parsed form of a fabric selection string
/// ("tree" | "fattree:<k,l,osub>" | "dragonfly:<a,g,h>[,valiant]").
struct FabricSpec {
  FabricKind kind = FabricKind::tree;
  // fattree: k children per switch, l switch levels, osub:1 oversubscription
  int ft_k = 4;
  int ft_levels = 2;
  int ft_osub = 1;
  // dragonfly: a routers/group, g groups, h hosts (and global ports)/router
  int df_a = 4;
  int df_g = 9;
  int df_h = 2;
  bool df_valiant = false;
  // Intra-node shape shared by every fabric (the paper's dual-socket node).
  int sockets = 2;
  int cores = 12;

  bool operator==(const FabricSpec&) const = default;
  std::string describe() const;
};

/// Strict whole-string parse of a fabric selection (the MPIM_TOPO /
/// EngineConfig::fabric grammar). Rejects unknown kinds, missing or extra
/// parameters, non-numeric / out-of-range values and dragonfly shapes
/// whose global links cannot reach every group (g - 1 > a * h). Returns
/// nullopt on garbage; callers log a warning and fall back to tree.
std::optional<FabricSpec> parse_fabric_spec(const std::string& text);

class Fabric {
 public:
  /// Longest route any implementation emits (dragonfly Valiant: 7 links).
  static constexpr int kMaxRouteLinks = 12;
  struct Route {
    int n = 0;
    int links[kMaxRouteLinks] = {};
  };

  virtual ~Fabric() = default;

  virtual FabricKind kind() const = 0;
  const FabricSpec& spec() const { return spec_; }

  /// The locality hierarchy: a balanced tree whose leaves are processing
  /// units. TreeMatch partitions against it level by level; placements
  /// index its leaves.
  const Topology& hierarchy() const { return hierarchy_; }
  int num_leaves() const { return hierarchy_.num_leaves(); }

  /// Hierarchy depth whose vertices are compute nodes (NIC domains).
  int node_level() const { return node_level_; }
  int num_nodes() const { return num_nodes_; }
  int node_of(int leaf) const {
    return hierarchy_.ancestor_index(leaf, node_level_);
  }
  bool same_node(int leaf_a, int leaf_b) const {
    return node_of(leaf_a) == node_of(leaf_b);
  }

  // --- links ---------------------------------------------------------------
  int num_links() const { return static_cast<int>(link_class_.size()); }
  int num_link_classes() const {
    return static_cast<int>(class_names_.size());
  }
  /// Classes [0, num_network_classes()) parametrize network links; the
  /// remaining classes are the intra-node locality levels (inter-socket,
  /// intra-socket, ..., same PU) in hierarchy order.
  int num_network_classes() const { return num_network_classes_; }
  const std::string& link_class_name(int cls) const;
  int link_class(int link) const;

  /// Per-class parameter index for a pair of leaves when a single class
  /// covers the whole path: always for same-node pairs (their intra
  /// class), and for *every* pair on a tree fabric (where it equals the
  /// common-ancestor depth, preserving the historical depth-indexed
  /// lookup). Returns -1 for inter-node pairs of routed fabrics; use
  /// route() there.
  int pair_class(int leaf_a, int leaf_b) const;

  /// True when pair_class() covers every pair (tree fabric): no route walk
  /// is needed to cost a transfer.
  bool single_class_paths() const { return kind() == FabricKind::tree; }

  // --- routing -------------------------------------------------------------
  /// Deterministic link sequence of an inter-node transfer, starting with
  /// the source node's NIC injection link and ending with the destination
  /// node's NIC delivery link. Empty for same-node pairs (no network).
  virtual void route(int leaf_src, int leaf_dst, Route* out) const = 0;

  /// Route used for distance and mismatch attribution: the *minimal* route
  /// even when the traffic policy detours (dragonfly Valiant), so
  /// hop_distance stays a metric (symmetric, triangle-bounded) and the
  /// mismatch analyzer measures placement quality, not routing policy.
  /// Identical to route() everywhere else.
  virtual void distance_route(int leaf_src, int leaf_dst, Route* out) const {
    route(leaf_src, leaf_dst, out);
  }

  /// Physical hop count between two leaves, the unit the introspection
  /// analyzer weighs bytes with. Same-node pairs keep the tree semantics
  /// 2 * (depth - common_ancestor_depth); inter-node pairs count the
  /// minimal-route links plus the PU-to-NIC legs on both ends. On a tree
  /// fabric this is exactly the historical Topology::hop_distance.
  int hop_distance(int leaf_a, int leaf_b) const;

  /// Locality class of a pair: the hierarchy common-ancestor depth
  /// (0 = only the machine root is shared, depth = same leaf).
  int locality(int leaf_a, int leaf_b) const {
    return hierarchy_.common_ancestor_depth(leaf_a, leaf_b);
  }

  std::string describe() const;

 protected:
  Fabric(FabricSpec spec, Topology hierarchy, int node_level,
         int num_network_classes, std::vector<std::string> network_class_names);

  /// Appends one link of class `cls`; returns its id. Ctors of subclasses
  /// enumerate their links through this.
  int add_link(int cls);

  FabricSpec spec_;
  Topology hierarchy_;
  int node_level_ = 1;
  int num_nodes_ = 1;
  int num_network_classes_ = 1;
  std::vector<std::string> class_names_;  ///< network classes then intra
  std::vector<int> link_class_;           ///< link id -> class
};

/// The historical balanced tree: link ids [0, N) are per-node tx (NIC
/// injection) ports, [N, 2N) per-node rx (delivery) ports; every
/// inter-node route is [tx(src_node), rx(dst_node)].
class TreeFabric final : public Fabric {
 public:
  explicit TreeFabric(Topology hierarchy);
  FabricKind kind() const override { return FabricKind::tree; }
  void route(int leaf_src, int leaf_dst, Route* out) const override;
};

/// k-ary fat-tree (XGFT) with `levels` switch stages above the nodes.
/// Nodes = k^levels, each with `sockets` x `cores` PUs. Tier-d trunks
/// (d = 1..levels-1, 1 nearest the root) have w = max(1, k/osub) parallel
/// links per direction per switch; the up-path picks parallel link
/// dst_node % w (D-mod-k), the down-path from the common ancestor is the
/// unique tree path with the same parallel index.
class FatTreeFabric final : public Fabric {
 public:
  FatTreeFabric(int k, int levels, int osub, int sockets = 2, int cores = 12);
  explicit FatTreeFabric(const FabricSpec& spec);
  FabricKind kind() const override { return FabricKind::fattree; }
  void route(int leaf_src, int leaf_dst, Route* out) const override;

 private:
  int node_tree_ancestor(int node, int d) const;  ///< node-tree vertex id
  int up_link(int d, int vertex, int parallel) const;
  int down_link(int d, int vertex, int parallel) const;

  int k_ = 4;
  int levels_ = 2;
  int width_ = 4;  ///< parallel trunk links per direction per switch
  std::vector<int> up_base_;    ///< per tier d (index d), 0 unused
  std::vector<int> down_base_;
};

/// 1D dragonfly: g groups of a routers; each router hosts h nodes and owns
/// h global ports; groups are connected all-to-all (g - 1 <= a * h
/// directed global links per group, global link o = (dst_g - src_g) mod g
/// - 1 attached to router o / h). Minimal routing (<= nic, local, global,
/// local, nic); with `valiant` a deterministic hash of the node pair picks
/// an intermediate group for one-hop Valiant spreading.
class DragonflyFabric final : public Fabric {
 public:
  DragonflyFabric(int a, int g, int h, bool valiant = false, int sockets = 2,
                  int cores = 12);
  explicit DragonflyFabric(const FabricSpec& spec);
  FabricKind kind() const override { return FabricKind::dragonfly; }
  void route(int leaf_src, int leaf_dst, Route* out) const override;
  /// Always minimal, Valiant or not (see Fabric::distance_route).
  void distance_route(int leaf_src, int leaf_dst, Route* out) const override;

 private:
  int local_link(int group, int from_router, int to_router) const;
  int global_link(int from_group, int to_group) const;
  int gateway_router(int from_group, int to_group) const;
  /// Router inside `to_group` where the from_group -> to_group global link
  /// lands (the owner of the reverse link under symmetric wiring).
  int landing_router(int from_group, int to_group) const;
  /// Appends the minimal route between two nodes (no NIC links).
  void minimal_between(int src_node, int dst_node, Route* out) const;

  int a_ = 4;
  int g_ = 9;
  int h_ = 2;
  bool valiant_ = false;
  int local_base_ = 0;
  int global_base_ = 0;
};

/// Builds the fabric a spec describes with at least `min_leaves`
/// processing units: tree grows its node count; fat-tree and dragonfly
/// have fixed node counts, so their cores-per-socket grows instead.
std::shared_ptr<const Fabric> make_fabric(const FabricSpec& spec,
                                          int min_leaves);

/// Wraps an existing balanced tree (the CostModel(Topology, params)
/// compatibility path).
std::shared_ptr<const Fabric> make_tree_fabric(Topology hierarchy);

}  // namespace mpim::topo
