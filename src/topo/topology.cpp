#include "topo/topology.h"

#include <numeric>
#include <unordered_set>

#include "support/error.h"
#include "support/rng.h"

namespace mpim::topo {

Topology::Topology(std::vector<int> arities,
                   std::vector<std::string> level_names)
    : arities_(std::move(arities)), level_names_(std::move(level_names)) {
  check(!arities_.empty(), "topology needs at least one level");
  check(arities_.size() == level_names_.size(),
        "one level name per arity required");
  for (int a : arities_) check(a >= 1, "topology arity must be >= 1");
  subtree_leaves_.assign(arities_.size() + 1, 1);
  for (int d = static_cast<int>(arities_.size()) - 1; d >= 0; --d)
    subtree_leaves_[d] = arities_[static_cast<std::size_t>(d)] *
                         subtree_leaves_[static_cast<std::size_t>(d) + 1];
}

int Topology::subtree_leaves(int d) const {
  check(d >= 0 && d <= depth(), "subtree depth out of range");
  return subtree_leaves_[static_cast<std::size_t>(d)];
}

int Topology::common_ancestor_depth(int leaf_a, int leaf_b) const {
  const int n = num_leaves();
  check(leaf_a >= 0 && leaf_a < n && leaf_b >= 0 && leaf_b < n,
        "leaf index out of range");
  for (int d = depth(); d >= 1; --d) {
    const int span = subtree_leaves(d);
    if (leaf_a / span == leaf_b / span) return d;
  }
  return 0;
}

int Topology::hop_distance(int leaf_a, int leaf_b) const {
  if (leaf_a == leaf_b) {
    check(leaf_a >= 0 && leaf_a < num_leaves(), "leaf index out of range");
    return 0;
  }
  return 2 * (depth() - common_ancestor_depth(leaf_a, leaf_b));
}

int Topology::ancestor_index(int leaf, int d) const {
  check(leaf >= 0 && leaf < num_leaves(), "leaf index out of range");
  check(d >= 0 && d <= depth(), "ancestor depth out of range");
  return leaf / subtree_leaves(d);
}

std::string Topology::describe() const {
  std::string out;
  for (std::size_t d = 0; d < arities_.size(); ++d) {
    if (d) out += " x ";
    out += std::to_string(arities_[d]) + " " + level_names_[d];
  }
  out += " (" + std::to_string(num_leaves()) + " PUs)";
  return out;
}

Topology Topology::cluster(int nodes, int sockets_per_node,
                           int cores_per_socket) {
  return Topology({nodes, sockets_per_node, cores_per_socket},
                  {"node", "socket", "core"});
}

Placement round_robin_placement(int nranks, const Topology& topo) {
  check(nranks >= 1 && nranks <= topo.num_leaves(),
        "more ranks than processing units");
  Placement p(static_cast<std::size_t>(nranks));
  std::iota(p.begin(), p.end(), 0);
  return p;
}

Placement bynode_placement(int nranks, const Topology& topo) {
  check(nranks >= 1 && nranks <= topo.num_leaves(),
        "more ranks than processing units");
  const int nodes = topo.arities()[0];
  const int per_node = topo.subtree_leaves(1);
  Placement p;
  p.reserve(static_cast<std::size_t>(nranks));
  std::vector<int> next_core(static_cast<std::size_t>(nodes), 0);
  int node = 0;
  while (static_cast<int>(p.size()) < nranks) {
    auto& cursor = next_core[static_cast<std::size_t>(node)];
    if (cursor < per_node) {
      p.push_back(node * per_node + cursor);
      ++cursor;
    }
    node = (node + 1) % nodes;
  }
  return p;
}

Placement random_placement(int nranks, const Topology& topo,
                           unsigned long seed) {
  Placement p = round_robin_placement(nranks, topo);
  Rng rng(seed);
  shuffle(p, rng);
  return p;
}

void validate_placement(const Placement& placement, const Topology& topo) {
  std::unordered_set<int> used;
  for (int leaf : placement) {
    check(leaf >= 0 && leaf < topo.num_leaves(), "placement leaf out of range");
    check(used.insert(leaf).second, "placement maps two ranks to one PU");
  }
}

}  // namespace mpim::topo
