// Hardware topology model.
//
// The machine is a balanced tree: root = whole machine, then one tree level
// per hardware hierarchy level (node, socket, core...). Leaves are the
// processing units onto which MPI ranks are placed. This is the same
// abstraction TreeMatch consumes (a tt_tree of arities) and the network
// model uses the depth of the deepest common ancestor of two leaves to pick
// latency/bandwidth parameters.
#pragma once

#include <string>
#include <vector>

namespace mpim::topo {

class Topology {
 public:
  /// `arities[d]` = number of children of every depth-d internal vertex;
  /// `level_names[d]` names the entity created by that split (e.g. "node").
  Topology(std::vector<int> arities, std::vector<std::string> level_names);

  /// PlaFRIM-like cluster: `nodes` x `sockets` x `cores`.
  /// The paper's testbed is 2 sockets x 12 cores (Haswell E5-2680v3).
  static Topology cluster(int nodes, int sockets_per_node = 2,
                          int cores_per_socket = 12);

  int depth() const { return static_cast<int>(arities_.size()); }
  const std::vector<int>& arities() const { return arities_; }
  const std::string& level_name(int d) const { return level_names_.at(d); }

  int num_leaves() const { return subtree_leaves_[0]; }

  /// Number of leaves under one subtree rooted at depth d (d = depth()
  /// gives 1: a leaf itself).
  int subtree_leaves(int d) const;

  /// Depth of the deepest common ancestor of two leaves: 0 = only the root
  /// is shared, depth() = identical leaf.
  int common_ancestor_depth(int leaf_a, int leaf_b) const;

  /// Tree hop count between two leaves: 2 * (depth() -
  /// common_ancestor_depth), 0 for the same leaf. The unit the
  /// introspection analyzer weighs bytes with (topology mismatch cost).
  int hop_distance(int leaf_a, int leaf_b) const;

  /// Index of the enclosing depth-d entity of a leaf (e.g. node number).
  int ancestor_index(int leaf, int d) const;

  /// Convenience for cluster() topologies.
  int node_of(int leaf) const { return ancestor_index(leaf, 1); }

  std::string describe() const;

 private:
  std::vector<int> arities_;
  std::vector<std::string> level_names_;
  /// subtree_leaves_[d] = leaves under one depth-d vertex;
  /// subtree_leaves_[0] is the whole machine, subtree_leaves_[depth()] == 1.
  std::vector<int> subtree_leaves_;
};

/// A placement assigns each MPI world rank a leaf (processing unit).
using Placement = std::vector<int>;

/// Rank i on the i-th leftmost core ("RR" in the paper's Fig. 7).
Placement round_robin_placement(int nranks, const Topology& topo);

/// Ranks scattered cyclically across nodes ("standard": the unbound default
/// of many launchers, which spreads by node rather than packing).
Placement bynode_placement(int nranks, const Topology& topo);

/// Deterministic random permutation of the round-robin placement
/// ("random" initial mapping in the paper's Fig. 7).
Placement random_placement(int nranks, const Topology& topo,
                           unsigned long seed);

/// Throws unless the placement is injective and within the leaf range.
void validate_placement(const Placement& placement, const Topology& topo);

}  // namespace mpim::topo
