#pragma once
// Cross-layer correlation over the plane's epoch-aligned timeline.
//
// Joins three layers the rest of the stack records independently:
//   * fault-plan ground truth (link degradation windows, crash schedules),
//   * network counters (per-node NIC tx, retransmit totals per epoch),
//   * application/recovery events (phase boundaries, reorders, rebinds,
//     dead-skips, crashes) as they appeared on the timeline.
// and derives human-readable findings such as
//   "link 1->2 degraded x8 in epochs 12..17: node 0 tx 3.1 MB/epoch
//    in-window vs 11.9 MB/epoch outside; retransmits 84 vs 3;
//    triggered: reorder@19, rebind@21".

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpim::fault {
class FaultPlan;
}
namespace mpim::net {
class NicCounters;
}

namespace mpim::obsplane {

/// One timeline event on the derived event lane.
struct EventRec {
  long epoch = 0;
  int rank = -1;      ///< -1 = not rank-specific
  double t_s = 0.0;
  std::string what;   ///< crash | rebind | dead_skip | reorder |
                      ///< identity_fallback | phase | session
  std::string name;   ///< span name when derived from a span
};

struct Finding {
  std::string kind;     ///< link_degraded | rank_crash
  std::string subject;  ///< "link 1->2" | "rank 3"
  long e0 = -1;         ///< first affected epoch
  long e1 = -1;         ///< last affected epoch
  std::string text;     ///< full human-readable finding
};

struct CorrelateInput {
  double epoch_s = 1.0e-3;
  long max_epoch = -1;                     ///< highest emitted epoch
  const fault::FaultPlan* plan = nullptr;  ///< may be null
  const net::NicCounters* nic = nullptr;   ///< may be null
  std::vector<int> node_of_rank;           ///< world rank -> node id
  std::map<long, std::uint64_t> retransmits_by_epoch;
  std::map<long, std::uint64_t> mismatch_by_epoch;
  std::vector<EventRec> events;
};

std::vector<Finding> correlate(const CorrelateInput& in);

}  // namespace mpim::obsplane
