#pragma once
// The streaming aggregation plane: continuous, bounded-memory observability
// for one engine (job).
//
// Rank threads stream into the plane incrementally while the app runs:
//   * every virtual-time epoch boundary a rank crosses, the engine's epoch
//     hook flushes that rank's metric deltas into its own SPSC staging ring
//     (the set of rings forms a lock-free MPSC layer: one producer per rank,
//     one draining consumer),
//   * closed snapshot frames and selected telemetry spans are forwarded from
//     their recording sites,
//   * whichever rank crossed the epoch then *tries* to drain (try-lock, so
//     the hot path never blocks on the consumer).
//
// The drain applies events to a bounded time-series store keyed by
// (rank, metric): a ring of per-epoch delta buckets plus mergeable sketches
// (log2 histogram + quantile sketch) per series, O(windows) memory however
// long the run. The PR-6 degradation governor widens the epoch merge factor
// as a shed rung, halving bucket resolution instead of dropping data.
//
// Nothing in here ever charges virtual time: clocks are bit-identical with
// the plane attached or not (the epoch hook itself is one double compare
// per engine call when disarmed). All plane work is host-side.
//
// Continuous export: when a stream path is configured, every completed epoch
// is appended to a JSONL file and flushed (crash-safe: a killed run keeps
// every epoch flushed so far, plus at most one torn final line, which the
// live viewer tolerates). At run end the plane correlates the timeline
// against the fault plan and NIC counters and emits findings through
// telemetry::log, the stream, and pvars 40+.

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "minimpi/engine.h"
#include "obsplane/correlate.h"
#include "obsplane/sketch.h"

namespace mpim::introspect {
struct Frame;
}

namespace mpim::obsplane {

/// Number of registry-backed metric slots the plane tracks per rank, plus
/// one synthetic slot (collective spans counted at the sink). Slot order is
/// fixed; see kSlotNames in plane.cpp.
inline constexpr int kMetricSlots = 15;
inline constexpr int kSlotCollectives = kMetricSlots;  // synthetic
inline constexpr int kAllSlots = kMetricSlots + 1;

/// One staged record. POD so the SPSC rings stay memcpy-friendly.
struct StreamEvent {
  enum class Kind : std::uint8_t { metric, frame, span };
  static constexpr std::size_t kNameCap = 24;

  Kind kind = Kind::metric;
  std::uint8_t aux = 0;    ///< frame: boundary flag; span: cat
  std::int16_t id = -1;    ///< metric: slot; frame: top peer
  int rank = -1;
  long epoch = 0;
  std::uint64_t seq = 0;   ///< per-producer sequence number
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::uint64_t a = 0;     ///< metric: delta; frame: bytes; span: SpanRec.a
  std::uint64_t b = 0;     ///< frame: msgs; span: SpanRec.b
  char name[kNameCap] = {0};  ///< span name
};

struct PlaneConfig {
  std::string job = "job0";
  /// Epoch width in virtual seconds (flush + drain cadence). Overridable
  /// with MPIM_STREAM_EPOCH_S (strict parse; invalid values are logged and
  /// ignored).
  double epoch_s = 1.0e-3;
  /// Per-producer staging ring capacity (events). Overflow drops the
  /// newest event and counts it; nothing blocks.
  std::size_t ring_capacity = 4096;
  /// Bounded per-series bucket windows (merged epochs) kept in the store.
  std::size_t windows = 256;
  /// JSONL stream file ("" = no continuous export).
  std::string stream_path;
  /// Prometheus-style text exposition written at finalize ("" = off).
  std::string prom_path;
};

class Plane {
 public:
  Plane(mpi::Engine& engine, PlaneConfig cfg);
  ~Plane();

  Plane(const Plane&) = delete;
  Plane& operator=(const Plane&) = delete;

  /// Creates a plane, parks it in the engine's obs-plane slot and installs
  /// the epoch / run-end / span-sink hooks. Call before Engine::run.
  static std::shared_ptr<Plane> attach(mpi::Engine& engine, PlaneConfig cfg);
  /// attach() driven by MPIM_STREAM_FILE / MPIM_STREAM_EPOCH_S /
  /// MPIM_PROM_FILE; returns nullptr (and attaches nothing) when
  /// MPIM_STREAM_FILE is unset or a plane is already attached.
  static std::shared_ptr<Plane> attach_from_env(mpi::Engine& engine);
  /// The plane attached to an engine, or nullptr.
  static Plane* attached(mpi::Engine& engine);

  // --- producer side (rank threads; rank == calling thread's rank) --------
  /// Epoch-hook target: flush rank's metric deltas staged since the last
  /// flush, stamp the completed epoch, then try to drain. `final` marks the
  /// rank's last flush of the run (normal exit or crash teardown).
  void on_epoch(int rank, double now_s, bool final_flush);
  /// Snapshot-frame forwarding (mpimon session frame callback). May run on
  /// a foreign thread for RMA traffic, so frames stage through a small
  /// mutexed side queue rather than the rank's SPSC ring.
  void on_frame(int rank, const introspect::Frame& f);
  /// Telemetry span sink (rank's own thread per the Hub contract).
  void on_span(int rank, const telemetry::SpanRec& rec);

  // --- consumer side ------------------------------------------------------
  /// Non-blocking drain; no-op when another thread is already draining.
  void try_drain();
  /// Blocking drain + final epoch emission + correlation + run_end record.
  /// Idempotent; installed as the engine's run-end hook so it runs even
  /// when run() is about to rethrow a rank failure.
  void finalize();
  /// Run-begin hook target: after a finalize, re-arms per-run state so the
  /// same plane can observe another run() of its engine (clocks restart at
  /// 0; registry counters stay cumulative).
  void begin_run();

  /// Governor shed rung: double the store's epoch merge factor (halves
  /// bucket resolution, re-keys existing buckets in place).
  void widen_windows();
  int window_merge() const { return merge_.load(std::memory_order_relaxed); }

  /// Prometheus-style text exposition of the store (point-in-time).
  void write_prometheus(std::ostream& os);

  // --- introspection for tests / pvars ------------------------------------
  std::uint64_t events_attempted() const;  ///< sum of producer seq counters
  std::uint64_t events_ingested() const { return ingested_.load(std::memory_order_relaxed); }
  std::uint64_t events_dropped() const;
  std::uint64_t epochs_emitted() const { return epochs_emitted_.load(std::memory_order_relaxed); }
  std::size_t series_count() const;
  std::uint64_t store_bytes() const { return mem_bytes_.load(std::memory_order_relaxed); }
  bool finalized() const { return finalized_.load(std::memory_order_acquire); }

  const PlaneConfig& config() const { return cfg_; }
  double epoch_s() const { return cfg_.epoch_s; }

  /// Per-(rank, slot-name) series snapshot: (merged epoch, delta) buckets.
  std::vector<std::pair<long, std::uint64_t>> series_buckets(
      int rank, const std::string& metric) const;
  /// Sketch quantile over a series' per-epoch deltas (0 when absent).
  std::uint64_t series_quantile(int rank, const std::string& metric,
                                double q) const;
  std::vector<Finding> findings() const;

  static const char* slot_name(int slot);

 private:
  struct Producer {
    explicit Producer(std::size_t cap) : buf(cap) {}
    // SPSC ring: the rank thread pushes, the draining consumer pops.
    std::vector<StreamEvent> buf;
    std::atomic<std::uint64_t> head{0};  ///< producer-advanced
    std::atomic<std::uint64_t> tail{0};  ///< consumer-advanced
    std::atomic<std::uint64_t> dropped{0};
    std::uint64_t seq = 0;               ///< owner thread only
    // Last flushed cumulative value per slot (owner thread only).
    std::array<std::uint64_t, kMetricSlots> shadow{};
    std::uint64_t coll = 0;       ///< collective spans seen (owner thread)
    std::uint64_t coll_shadow = 0;
    std::atomic<long> reported{-1};      ///< last completed epoch flushed
    std::atomic<bool> final_flag{false};
  };

  struct Series {
    std::deque<std::pair<long, std::uint64_t>> buckets;  // (merged epoch, delta)
    Log2Hist hist;
    QuantileSketch sketch;
    std::uint64_t total = 0;
  };

  bool push(int rank, const StreamEvent& ev);
  void drain_locked();
  void apply_locked(const StreamEvent& ev);
  void add_event_locked(long epoch, int rank, double t_s, const char* what,
                        const char* name);
  void emit_upto_locked(long watermark);
  void emit_epoch_locked(long e);
  void stream_line_locked(const std::string& line);
  void write_run_start_locked();
  void write_prometheus_locked(std::ostream& os) const;
  void derive_crash_events_locked();
  void mirror_counters_locked();
  void update_mem_gauge_locked();
  long watermark_locked() const;
  CorrelateInput build_correlate_input_locked() const;

  mpi::Engine& engine_;
  PlaneConfig cfg_;
  int nranks_;
  std::array<int, kMetricSlots> slot_ids_{};  ///< hub registry metric ids

  std::vector<std::unique_ptr<Producer>> producers_;

  // Frame side queue (frames can arrive on foreign threads; see on_frame).
  mutable std::mutex frame_mx_;
  std::deque<StreamEvent> frame_q_;
  std::uint64_t frame_attempted_ = 0;
  std::atomic<std::uint64_t> frame_dropped_{0};

  // Consumer state, all guarded by drain_mx_.
  mutable std::mutex drain_mx_;
  std::map<std::pair<int, int>, Series> series_;      // (rank, slot)
  std::map<long, std::vector<StreamEvent>> pending_;  // raw epoch -> events
  std::map<long, std::vector<EventRec>> pending_events_;
  std::map<long, std::uint64_t> retransmits_by_epoch_;
  std::map<long, std::uint64_t> mismatch_by_epoch_;
  std::vector<EventRec> events_;                      // derived event lane
  std::set<int> dead_seen_;
  std::vector<std::uint64_t> node_tx_cum_;            // per node, last emit
  long emitted_upto_ = -1;
  std::uint64_t mirrored_ingested_ = 0;
  std::uint64_t mirrored_dropped_ = 0;
  std::uint64_t mirrored_epochs_ = 0;
  std::vector<Finding> findings_;
  std::FILE* stream_ = nullptr;
  bool wrote_run_start_ = false;
  bool finalize_done_ = false;

  std::atomic<int> merge_{1};
  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> epochs_emitted_{0};
  std::atomic<std::uint64_t> mem_bytes_{0};
  std::atomic<bool> finalized_{false};
};

}  // namespace mpim::obsplane
