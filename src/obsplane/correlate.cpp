#include "obsplane/correlate.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "fault/fault_plan.h"
#include "netmodel/nic_counters.h"

namespace mpim::obsplane {

namespace {

std::string rank_name(int r) {
  return r < 0 ? std::string("*") : std::to_string(r);
}

bool is_recovery_event(const std::string& what) {
  return what == "reorder" || what == "rebind" || what == "crash" ||
         what == "dead_skip" || what == "identity_fallback";
}

/// "reorder@19, rebind@21" for up to `maxn` distinct recovery reactions at
/// or after epoch e0 (the earliest occurrence of each kind).
std::string triggered_list(const std::vector<EventRec>& events, long e0,
                           std::size_t maxn) {
  std::vector<std::pair<std::string, long>> firsts;
  for (const EventRec& ev : events) {
    if (ev.epoch < e0 || !is_recovery_event(ev.what)) continue;
    auto it = std::find_if(firsts.begin(), firsts.end(),
                           [&](const auto& p) { return p.first == ev.what; });
    if (it == firsts.end())
      firsts.emplace_back(ev.what, ev.epoch);
    else
      it->second = std::min(it->second, ev.epoch);
  }
  std::sort(firsts.begin(), firsts.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::ostringstream os;
  std::size_t n = 0;
  for (const auto& p : firsts) {
    if (n == maxn) break;
    if (n != 0) os << ", ";
    os << p.first << "@" << p.second;
    ++n;
  }
  return os.str();
}

}  // namespace

std::vector<Finding> correlate(const CorrelateInput& in) {
  std::vector<Finding> out;
  if (in.epoch_s <= 0.0) return out;
  const double eps = in.epoch_s;

  // --- link degradation windows vs the observed timeline -------------------
  if (in.plan != nullptr) {
    for (const auto& lf : in.plan->link_faults()) {
      if (lf.degrade_factor <= 1.0 || lf.degrade_until_s <= lf.degrade_from_s)
        continue;
      long e0 = static_cast<long>(lf.degrade_from_s / eps);
      long e1 = static_cast<long>(std::ceil(lf.degrade_until_s / eps)) - 1;
      if (e1 < e0) e1 = e0;
      if (in.max_epoch >= 0) e1 = std::min(e1, in.max_epoch);
      const std::string subject =
          "link " + rank_name(lf.src) + "->" + rank_name(lf.dst);

      std::ostringstream os;
      os << std::setprecision(6);
      os << subject << " degraded x" << lf.degrade_factor << " in epochs "
         << e0 << ".." << e1 << " (t " << lf.degrade_from_s << ".."
         << lf.degrade_until_s << "s)";

      // Evidence 1: transmit-throughput dip on the sending node.
      if (in.nic != nullptr && lf.src >= 0 &&
          lf.src < static_cast<int>(in.node_of_rank.size()) &&
          in.max_epoch > e1) {
        const int node = in.node_of_rank[static_cast<std::size_t>(lf.src)];
        const double in_epochs = static_cast<double>(e1 - e0 + 1);
        const std::uint64_t in_tx =
            in.nic->bytes_until(node, static_cast<double>(e1 + 1) * eps) -
            in.nic->bytes_until(node, static_cast<double>(e0) * eps);
        const std::uint64_t total_tx = in.nic->bytes_until(
            node, static_cast<double>(in.max_epoch + 1) * eps);
        const double out_epochs =
            static_cast<double>(in.max_epoch + 1) - in_epochs;
        if (out_epochs > 0.0) {
          const double in_rate = static_cast<double>(in_tx) / in_epochs;
          const double out_rate =
              static_cast<double>(total_tx - in_tx) / out_epochs;
          os << ": node " << node << " tx " << std::llround(in_rate)
             << " B/epoch in-window vs " << std::llround(out_rate)
             << " outside";
        }
      }

      // Evidence 2: retransmit spike inside the window.
      std::uint64_t in_r = 0, total_r = 0;
      for (const auto& kv : in.retransmits_by_epoch) {
        total_r += kv.second;
        if (kv.first >= e0 && kv.first <= e1) in_r += kv.second;
      }
      if (total_r > 0)
        os << "; retransmits " << in_r << " in-window vs " << (total_r - in_r)
           << " outside";

      // Evidence 3: bytes that flowed while the window was open (frames).
      std::uint64_t in_m = 0;
      for (const auto& kv : in.mismatch_by_epoch)
        if (kv.first >= e0 && kv.first <= e1) in_m += kv.second;
      if (in_m > 0) os << "; " << in_m << " frame bytes in-window";

      const std::string trig = triggered_list(in.events, e0, 4);
      if (!trig.empty()) os << "; triggered: " << trig;

      Finding f;
      f.kind = "link_degraded";
      f.subject = subject;
      f.e0 = e0;
      f.e1 = e1;
      f.text = os.str();
      out.push_back(std::move(f));
    }
  }

  // --- crashes and the recovery reactions that followed ---------------------
  for (const EventRec& ev : in.events) {
    if (ev.what != "crash") continue;
    std::uint64_t skips = 0, rebinds = 0, reorders = 0, fallbacks = 0;
    for (const EventRec& e2 : in.events) {
      if (e2.epoch < ev.epoch) continue;
      if (e2.what == "dead_skip") ++skips;
      if (e2.what == "rebind") ++rebinds;
      if (e2.what == "reorder") ++reorders;
      if (e2.what == "identity_fallback") ++fallbacks;
    }
    std::ostringstream os;
    os << std::setprecision(6);
    os << "rank " << ev.rank << " crashed at t=" << ev.t_s << "s (epoch "
       << ev.epoch << "); recovery after: " << skips << " dead-skips, "
       << rebinds << " rebinds, " << reorders << " reorders, " << fallbacks
       << " identity fallbacks";
    Finding f;
    f.kind = "rank_crash";
    f.subject = "rank " + std::to_string(ev.rank);
    f.e0 = ev.epoch;
    f.e1 = in.max_epoch >= ev.epoch ? in.max_epoch : ev.epoch;
    f.text = os.str();
    out.push_back(std::move(f));
  }

  return out;
}

}  // namespace mpim::obsplane
