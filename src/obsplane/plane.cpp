#include "obsplane/plane.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "critpath/critpath.h"
#include "fault/fault_plan.h"
#include "introspect/analyzer.h"
#include "introspect/snapshot.h"
#include "support/env.h"
#include "telemetry/log.h"

namespace mpim::obsplane {

namespace {

// Stream names of the metric slots, index == slot. The registry-backed
// entries mirror hub StdIds counters (same order as Plane::slot_ids_); the
// final entry counts depth-0 collective spans seen at the span sink.
constexpr const char* kSlotNames[kAllSlots] = {
    "engine_messages",
    "engine_bytes",
    "fault_retransmits",
    "fault_drops",
    "fault_lost",
    "fault_backoff_ns",
    "fault_crashes",
    "mon_gather_timeouts",
    "mon_dead_skips",
    "mon_rebinds",
    "reorder_applied",
    "reorder_identity",
    "introspect_boundaries",
    "critpath_events",
    "critpath_wait_ns",
    "collectives",
};

constexpr int kSlotRetransmits = 2;
constexpr int kSlotDeadSkips = 8;
constexpr int kSlotRebinds = 9;
constexpr int kSlotReorderApplied = 10;
constexpr int kSlotReorderIdentity = 11;

const char* derived_event_name(int slot) {
  switch (slot) {
    case kSlotDeadSkips:
      return "dead_skip";
    case kSlotRebinds:
      return "rebind";
    case kSlotReorderApplied:
      return "reorder";
    case kSlotReorderIdentity:
      return "identity_fallback";
    default:
      return nullptr;
  }
}

constexpr std::size_t kMaxEventLane = 8192;

}  // namespace

const char* Plane::slot_name(int slot) {
  if (slot < 0 || slot >= kAllSlots) return "?";
  return kSlotNames[slot];
}

Plane::Plane(mpi::Engine& engine, PlaneConfig cfg)
    : engine_(engine), cfg_(std::move(cfg)), nranks_(engine.world_size()) {
  if (cfg_.epoch_s <= 0.0) cfg_.epoch_s = 1.0e-3;
  if (cfg_.ring_capacity < 2) cfg_.ring_capacity = 2;
  if (cfg_.windows < 4) cfg_.windows = 4;

  const auto& ids = engine_.telemetry().ids();
  slot_ids_ = {ids.engine_messages,  ids.engine_bytes,
               ids.fault_retransmits, ids.fault_drops,
               ids.fault_lost,        ids.fault_backoff_ns,
               ids.fault_crashes,     ids.mon_gather_timeouts,
               ids.mon_dead_skips,    ids.mon_rebinds,
               ids.reorder_applied,   ids.reorder_identity,
               ids.introspect_boundaries,
               ids.critpath_events,   ids.critpath_wait_ns};

  producers_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    producers_.push_back(std::make_unique<Producer>(cfg_.ring_capacity));
  node_tx_cum_.assign(static_cast<std::size_t>(engine_.nic().num_nodes()), 0);

  if (!cfg_.stream_path.empty()) {
    stream_ = std::fopen(cfg_.stream_path.c_str(), "wb");
    if (!stream_)
      telemetry::log(telemetry::LogLevel::warn, -1, "obsplane",
                     "cannot open stream file " + cfg_.stream_path);
  }
  std::lock_guard<std::mutex> lk(drain_mx_);
  write_run_start_locked();
}

Plane::~Plane() {
  if (stream_) {
    std::fflush(stream_);
    std::fclose(stream_);
    stream_ = nullptr;
  }
}

void Plane::write_run_start_locked() {
  std::ostringstream os;
  os << "{\"type\":\"run_start\",\"job\":\"" << telemetry::json_escape(cfg_.job)
     << "\",\"ranks\":" << nranks_ << ",\"epoch_s\":" << std::setprecision(12)
     << cfg_.epoch_s << ",\"version\":1}";
  stream_line_locked(os.str());
  wrote_run_start_ = true;
  if (stream_) std::fflush(stream_);
}

std::shared_ptr<Plane> Plane::attach(mpi::Engine& engine, PlaneConfig cfg) {
  if (engine.obs_plane()) return nullptr;
  auto plane = std::make_shared<Plane>(engine, std::move(cfg));
  Plane* p = plane.get();
  engine.set_obs_plane(plane);
  engine.telemetry().set_enabled(true);
  engine.telemetry().set_span_sink(
      [p](int rank, const telemetry::SpanRec& rec) { p->on_span(rank, rec); });
  engine.set_epoch_hook(
      [p](int rank, double now_s, bool fin) { p->on_epoch(rank, now_s, fin); },
      p->cfg_.epoch_s);
  engine.set_run_begin_hook([p] { p->begin_run(); });
  engine.set_run_end_hook([p] { p->finalize(); });
  return plane;
}

std::shared_ptr<Plane> Plane::attach_from_env(mpi::Engine& engine) {
  const auto path = support::env_nonempty_string("MPIM_STREAM_FILE");
  if (path.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "obsplane",
                   "ignoring invalid MPIM_STREAM_FILE=\"" + path.raw +
                       "\" (want a file path with at least one non-space "
                       "character); streaming stays off");
    return nullptr;
  }
  if (!path.ok()) return nullptr;
  if (engine.obs_plane()) return nullptr;
  PlaneConfig cfg;
  cfg.stream_path = path.value;
  const auto eps = support::env_positive_double("MPIM_STREAM_EPOCH_S");
  if (eps.ok()) {
    cfg.epoch_s = eps.value;
  } else if (eps.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "obsplane",
                   "ignoring invalid MPIM_STREAM_EPOCH_S=\"" + eps.raw +
                       "\" (want a positive number of virtual seconds); "
                       "using default");
  }
  const auto prom = support::env_nonempty_string("MPIM_PROM_FILE");
  if (prom.ok()) {
    cfg.prom_path = prom.value;
  } else if (prom.invalid()) {
    telemetry::log(telemetry::LogLevel::warn, -1, "obsplane",
                   "ignoring invalid MPIM_PROM_FILE=\"" + prom.raw +
                       "\" (want a file path with at least one non-space "
                       "character); exposition stays off");
  }
  return attach(engine, std::move(cfg));
}

Plane* Plane::attached(mpi::Engine& engine) {
  return static_cast<Plane*>(engine.obs_plane());
}

// ---------------------------------------------------------------- producers

bool Plane::push(int rank, const StreamEvent& ev0) {
  Producer& p = *producers_[static_cast<std::size_t>(rank)];
  const std::uint64_t head = p.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = p.tail.load(std::memory_order_acquire);
  StreamEvent ev = ev0;
  ev.rank = rank;
  ev.seq = p.seq++;
  if (head - tail >= p.buf.size()) {
    p.dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  p.buf[head % p.buf.size()] = ev;
  p.head.store(head + 1, std::memory_order_release);
  return true;
}

void Plane::on_epoch(int rank, double now_s, bool final_flush) {
  if (rank < 0 || rank >= nranks_) return;
  if (finalized_.load(std::memory_order_acquire)) return;
  Producer& p = *producers_[static_cast<std::size_t>(rank)];
  const double eps = cfg_.epoch_s;
  const long cur = static_cast<long>(now_s / eps);
  long e = final_flush ? cur : cur - 1;
  if (e < 0) e = 0;

  const auto& reg = engine_.telemetry().registry();
  for (int s = 0; s < kMetricSlots; ++s) {
    const int id = slot_ids_[static_cast<std::size_t>(s)];
    if (id < 0) continue;
    const std::uint64_t v = reg.counter_value(id, rank);
    const std::uint64_t d = v - p.shadow[static_cast<std::size_t>(s)];
    if (d == 0) continue;
    StreamEvent ev;
    ev.kind = StreamEvent::Kind::metric;
    ev.id = static_cast<std::int16_t>(s);
    ev.epoch = e;
    ev.t0_s = now_s;
    ev.a = d;
    push(rank, ev);
    p.shadow[static_cast<std::size_t>(s)] = v;
  }
  if (p.coll != p.coll_shadow) {
    StreamEvent ev;
    ev.kind = StreamEvent::Kind::metric;
    ev.id = static_cast<std::int16_t>(kSlotCollectives);
    ev.epoch = e;
    ev.t0_s = now_s;
    ev.a = p.coll - p.coll_shadow;
    push(rank, ev);
    p.coll_shadow = p.coll;
  }
  // The release store publishes every push above: a consumer that observes
  // this epoch also observes its events (watermark is snapshotted before
  // the rings are drained).
  p.reported.store(e, std::memory_order_release);
  if (final_flush) p.final_flag.store(true, std::memory_order_release);
  try_drain();
}

void Plane::on_frame(int rank, const introspect::Frame& f) {
  if (rank < 0 || rank >= nranks_) return;
  if (finalized_.load(std::memory_order_acquire)) return;
  const introspect::FrameTotals tot = introspect::frame_totals(f);
  StreamEvent ev;
  ev.kind = StreamEvent::Kind::frame;
  ev.rank = rank;
  ev.epoch = static_cast<long>(f.t0_s / cfg_.epoch_s);
  ev.t0_s = f.t0_s;
  ev.t1_s = f.t1_s;
  ev.aux = f.boundary ? 1 : 0;
  ev.id = static_cast<std::int16_t>(
      std::min<int>(tot.top_peer, std::numeric_limits<std::int16_t>::max()));
  ev.a = tot.bytes;
  ev.b = tot.msgs;
  std::lock_guard<std::mutex> lk(frame_mx_);
  ++frame_attempted_;
  if (frame_q_.size() >= cfg_.ring_capacity) {
    frame_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  frame_q_.push_back(ev);
}

void Plane::on_span(int rank, const telemetry::SpanRec& rec) {
  if (rank < 0 || rank >= nranks_) return;
  if (finalized_.load(std::memory_order_acquire)) return;
  if (rec.cat == 'C') {
    if (rec.depth == 0) ++producers_[static_cast<std::size_t>(rank)]->coll;
    return;
  }
  if (rec.cat != 'S' && rec.cat != 'R' && rec.cat != 'P') return;
  StreamEvent ev;
  ev.kind = StreamEvent::Kind::span;
  ev.aux = static_cast<std::uint8_t>(rec.cat);
  ev.epoch = static_cast<long>(rec.t0_s / cfg_.epoch_s);
  ev.t0_s = rec.t0_s;
  ev.t1_s = rec.t1_s;
  ev.a = static_cast<std::uint64_t>(rec.a);
  ev.b = static_cast<std::uint64_t>(rec.b);
  static_assert(StreamEvent::kNameCap >= telemetry::SpanRec::kNameCap);
  std::memcpy(ev.name, rec.name, telemetry::SpanRec::kNameCap);
  push(rank, ev);
}

// ----------------------------------------------------------------- consumer

void Plane::try_drain() {
  std::unique_lock<std::mutex> lk(drain_mx_, std::try_to_lock);
  if (!lk.owns_lock()) return;
  drain_locked();
}

long Plane::watermark_locked() const {
  long wm = LONG_MAX;
  bool any_live = false;
  long max_final = -1;
  for (const auto& p : producers_) {
    const long r = p->reported.load(std::memory_order_acquire);
    if (p->final_flag.load(std::memory_order_acquire)) {
      max_final = std::max(max_final, r);
      continue;  // finished/crashed ranks never hold the watermark back
    }
    wm = std::min(wm, r);
    any_live = true;
  }
  return any_live ? wm : max_final;
}

void Plane::drain_locked() {
  // Snapshot watermarks BEFORE draining rings: a producer stores events
  // before advancing its reported epoch, so every event belonging to an
  // epoch <= the snapshot is already in its ring when we get here.
  const long wm = watermark_locked();

  for (auto& up : producers_) {
    Producer& p = *up;
    const std::uint64_t head = p.head.load(std::memory_order_acquire);
    std::uint64_t tail = p.tail.load(std::memory_order_relaxed);
    while (tail != head) {
      apply_locked(p.buf[tail % p.buf.size()]);
      ++tail;
      ingested_.fetch_add(1, std::memory_order_relaxed);
    }
    p.tail.store(tail, std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lk(frame_mx_);
    while (!frame_q_.empty()) {
      apply_locked(frame_q_.front());
      frame_q_.pop_front();
      ingested_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  derive_crash_events_locked();
  if (wm >= 0) emit_upto_locked(wm);
  mirror_counters_locked();
  update_mem_gauge_locked();
  if (stream_) std::fflush(stream_);
}

void Plane::add_event_locked(long epoch, int rank, double t_s,
                             const char* what, const char* name) {
  EventRec ev;
  ev.epoch = epoch;
  ev.rank = rank;
  ev.t_s = t_s;
  ev.what = what;
  if (name != nullptr) ev.name = name;
  if (events_.size() < kMaxEventLane) events_.push_back(ev);
  pending_events_[epoch].push_back(std::move(ev));
}

void Plane::apply_locked(const StreamEvent& ev) {
  const int merge = merge_.load(std::memory_order_relaxed);
  switch (ev.kind) {
    case StreamEvent::Kind::metric: {
      Series& s = series_[{ev.rank, ev.id}];
      const long me = ev.epoch / merge;
      if (!s.buckets.empty() && s.buckets.back().first >= me) {
        s.buckets.back().second += ev.a;
      } else {
        s.buckets.emplace_back(me, ev.a);
        while (s.buckets.size() > cfg_.windows) s.buckets.pop_front();
      }
      s.hist.observe(ev.a);
      s.sketch.observe(ev.a);
      s.total += ev.a;
      if (ev.id == kSlotRetransmits) retransmits_by_epoch_[ev.epoch] += ev.a;
      if (const char* what = derived_event_name(ev.id); what != nullptr)
        add_event_locked(ev.epoch, ev.rank, ev.t0_s, what, nullptr);
      if (stream_) pending_[ev.epoch].push_back(ev);
      break;
    }
    case StreamEvent::Kind::frame: {
      if (ev.aux != 0)
        add_event_locked(ev.epoch, ev.rank, ev.t0_s, "phase", nullptr);
      mismatch_by_epoch_[ev.epoch] += ev.a;
      if (stream_) pending_[ev.epoch].push_back(ev);
      break;
    }
    case StreamEvent::Kind::span: {
      if (ev.aux == 'S')
        add_event_locked(ev.epoch, ev.rank, ev.t0_s, "session", ev.name);
      if (stream_) pending_[ev.epoch].push_back(ev);
      break;
    }
  }
}

void Plane::derive_crash_events_locked() {
  if (engine_.dead_ranks().empty()) return;
  for (int r : engine_.dead_ranks()) {
    if (dead_seen_.count(r) != 0) continue;
    dead_seen_.insert(r);
    const double t = engine_.dead_time(r);
    add_event_locked(static_cast<long>(t / cfg_.epoch_s), r, t, "crash",
                     nullptr);
  }
}

void Plane::emit_upto_locked(long watermark) {
  // Events for epochs at or below the watermark (including late arrivals
  // for epochs already emitted: the stream may carry out-of-order epoch
  // blocks and the viewer tolerates them).
  std::vector<long> ready;
  for (const auto& kv : pending_)
    if (kv.first <= watermark) ready.push_back(kv.first);
  for (const auto& kv : pending_events_)
    if (kv.first <= watermark &&
        std::find(ready.begin(), ready.end(), kv.first) == ready.end())
      ready.push_back(kv.first);
  std::sort(ready.begin(), ready.end());
  for (long e : ready) emit_epoch_locked(e);
  emitted_upto_ = std::max(emitted_upto_, watermark);
}

void Plane::emit_epoch_locked(long e) {
  const double eps = cfg_.epoch_s;
  epochs_emitted_.fetch_add(1, std::memory_order_relaxed);
  std::size_t n = 0;
  if (stream_) {
    std::ostringstream os;
    os << std::setprecision(12);
    os << "{\"type\":\"epoch\",\"e\":" << e << ",\"t0\":" << e * eps
       << ",\"t1\":" << (e + 1) * eps << "}";
    stream_line_locked(os.str());
  }
  auto it = pending_.find(e);
  if (it != pending_.end()) {
    if (stream_) {
      for (const StreamEvent& ev : it->second) {
        std::ostringstream os;
        os << std::setprecision(12);
        switch (ev.kind) {
          case StreamEvent::Kind::metric:
            os << "{\"type\":\"metric\",\"e\":" << e << ",\"rank\":" << ev.rank
               << ",\"name\":\"" << slot_name(ev.id) << "\",\"delta\":" << ev.a
               << "}";
            break;
          case StreamEvent::Kind::frame:
            os << "{\"type\":\"frame\",\"e\":" << e << ",\"rank\":" << ev.rank
               << ",\"t0\":" << ev.t0_s << ",\"t1\":" << ev.t1_s
               << ",\"bytes\":" << ev.a << ",\"msgs\":" << ev.b
               << ",\"top_peer\":" << ev.id
               << ",\"boundary\":" << (ev.aux != 0 ? 1 : 0) << "}";
            break;
          case StreamEvent::Kind::span:
            os << "{\"type\":\"span\",\"e\":" << e << ",\"rank\":" << ev.rank
               << ",\"cat\":\"" << static_cast<char>(ev.aux) << "\",\"name\":\""
               << telemetry::json_escape(ev.name) << "\",\"t0\":" << ev.t0_s
               << ",\"t1\":" << ev.t1_s << "}";
            break;
        }
        stream_line_locked(os.str());
        ++n;
      }
    }
    pending_.erase(it);
  }
  auto et = pending_events_.find(e);
  if (et != pending_events_.end()) {
    if (stream_) {
      for (const EventRec& ev : et->second) {
        std::ostringstream os;
        os << std::setprecision(12);
        os << "{\"type\":\"event\",\"e\":" << e << ",\"rank\":" << ev.rank
           << ",\"what\":\"" << telemetry::json_escape(ev.what) << "\"";
        if (!ev.name.empty())
          os << ",\"name\":\"" << telemetry::json_escape(ev.name) << "\"";
        os << ",\"t\":" << ev.t_s << "}";
        stream_line_locked(os.str());
        ++n;
      }
    }
    pending_events_.erase(et);
  }
  // Per-node NIC transmit deltas since the last emitted epoch (utilization
  // rows for the live view).
  if (stream_) {
    net::NicCounters& nic = engine_.nic();
    for (int node = 0; node < nic.num_nodes(); ++node) {
      const std::uint64_t cum = nic.bytes_until(node, (e + 1) * eps);
      const std::uint64_t prev = node_tx_cum_[static_cast<std::size_t>(node)];
      if (cum > prev) {
        std::ostringstream os;
        os << "{\"type\":\"link\",\"e\":" << e << ",\"node\":" << node
           << ",\"tx\":" << (cum - prev) << "}";
        stream_line_locked(os.str());
        node_tx_cum_[static_cast<std::size_t>(node)] = cum;
        ++n;
      }
    }
    std::ostringstream os;
    os << "{\"type\":\"epoch_end\",\"e\":" << e << ",\"n\":" << n
       << ",\"drops\":" << events_dropped() << "}";
    stream_line_locked(os.str());
  }
}

void Plane::stream_line_locked(const std::string& line) {
  if (!stream_) return;
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fputc('\n', stream_);
}

void Plane::mirror_counters_locked() {
  auto& hub = engine_.telemetry();
  const auto& ids = hub.ids();
  if (ids.obsplane_events >= 0) {
    const std::uint64_t ing = ingested_.load(std::memory_order_relaxed);
    if (ing > mirrored_ingested_) {
      hub.add(ids.obsplane_events, 0, ing - mirrored_ingested_);
      mirrored_ingested_ = ing;
    }
  }
  if (ids.obsplane_drops >= 0) {
    const std::uint64_t drp = events_dropped();
    if (drp > mirrored_dropped_) {
      hub.add(ids.obsplane_drops, 0, drp - mirrored_dropped_);
      mirrored_dropped_ = drp;
    }
  }
  if (ids.obsplane_epochs >= 0) {
    const std::uint64_t ep = epochs_emitted_.load(std::memory_order_relaxed);
    if (ep > mirrored_epochs_) {
      hub.add(ids.obsplane_epochs, 0, ep - mirrored_epochs_);
      mirrored_epochs_ = ep;
    }
  }
  hub.gauge_set(ids.obsplane_series, 0,
                static_cast<std::int64_t>(series_.size()));
  hub.gauge_set(ids.obsplane_window_merge, 0,
                merge_.load(std::memory_order_relaxed));
}

void Plane::update_mem_gauge_locked() {
  std::uint64_t mem =
      static_cast<std::uint64_t>(nranks_) * cfg_.ring_capacity *
      sizeof(StreamEvent);
  for (const auto& kv : series_) {
    mem += sizeof(Series) + kv.second.buckets.size() * sizeof(std::pair<long, std::uint64_t>);
    mem += kv.second.sketch.stored() * 16;
  }
  std::uint64_t pend = 0;
  for (const auto& kv : pending_) pend += kv.second.size();
  mem += pend * sizeof(StreamEvent);
  mem_bytes_.store(mem, std::memory_order_relaxed);
  engine_.telemetry().gauge_set(engine_.telemetry().ids().obsplane_mem_bytes, 0,
                                static_cast<std::int64_t>(mem));
}

void Plane::begin_run() {
  std::lock_guard<std::mutex> lk(drain_mx_);
  if (!finalize_done_) return;  // first run, or finalize never happened
  // Re-arm for another run on the same engine: virtual clocks restart at 0,
  // so per-run epoch state resets; registry counters are cumulative across
  // runs, so producer shadows persist.
  for (auto& p : producers_) {
    p->reported.store(-1, std::memory_order_relaxed);
    p->final_flag.store(false, std::memory_order_relaxed);
  }
  series_.clear();
  pending_.clear();
  pending_events_.clear();
  retransmits_by_epoch_.clear();
  mismatch_by_epoch_.clear();
  events_.clear();
  dead_seen_.clear();
  std::fill(node_tx_cum_.begin(), node_tx_cum_.end(), 0);
  emitted_upto_ = -1;
  findings_.clear();
  finalize_done_ = false;
  finalized_.store(false, std::memory_order_release);
  write_run_start_locked();
}

void Plane::finalize() {
  std::lock_guard<std::mutex> lk(drain_mx_);
  if (finalize_done_) return;
  finalize_done_ = true;
  // Rank threads are joined by the time the run-end hook fires, so every
  // producer had its final flush; treat them all as final and drain fully.
  for (auto& p : producers_)
    p->final_flag.store(true, std::memory_order_release);
  drain_locked();
  // Emit whatever the watermark logic left pending (e.g. nothing reported).
  if (!pending_.empty() || !pending_events_.empty()) {
    long last = emitted_upto_;
    if (!pending_.empty()) last = std::max(last, pending_.rbegin()->first);
    if (!pending_events_.empty())
      last = std::max(last, pending_events_.rbegin()->first);
    emit_upto_locked(last);
  }

  findings_ = correlate(build_correlate_input_locked());
  // Fold in the critical-path profiler's blame verdicts (the crit run-end
  // hook fires before this one, so the report is already finalized).
  if (critpath::Profiler* prof = critpath::Profiler::attached(engine_)) {
    const critpath::BlameReport& rep = prof->report();
    if (rep.valid && rep.dominant_rank >= 0 && rep.total_wait_ns > 0) {
      Finding f;
      f.kind = "wait_state_dominant";
      f.subject = "rank " + std::to_string(rep.dominant_rank);
      f.e0 = 0;
      f.e1 = emitted_upto_;
      f.text = "critpath: rank " + std::to_string(rep.dominant_rank) +
               " causes the most waiting (" +
               std::to_string(
                   rep.ranks[static_cast<std::size_t>(rep.dominant_rank)]
                       .caused_ns) +
               " ns charged to peers); dominant wait state " +
               critpath::wait_class_name(rep.dominant_class) + ", " +
               std::to_string(rep.total_wait_ns) + " ns waited in total" +
               (rep.blame_only ? " [blame-only: rings refused]" : "");
      findings_.push_back(std::move(f));
    }
    if (rep.valid && rep.critical_link.wait_ns > 0) {
      const critpath::LinkBlame& lb = rep.critical_link;
      Finding f;
      f.kind = "critical_link";
      f.subject = "link " + std::to_string(lb.src) + "->" +
                  std::to_string(lb.dst);
      f.e0 = 0;
      f.e1 = emitted_upto_;
      f.text = "critpath: link " + std::to_string(lb.src) + "->" +
               std::to_string(lb.dst) + " carries the largest wait (" +
               std::to_string(lb.wait_ns) + " ns over " +
               std::to_string(lb.bytes) + " bytes" +
               (lb.cross_node ? ", cross-node)" : ", intra-node)");
      findings_.push_back(std::move(f));
    }
  }
  auto& hub = engine_.telemetry();
  for (const Finding& f : findings_) {
    telemetry::log(telemetry::LogLevel::info, -1, "obsplane", f.text);
    if (stream_) {
      std::ostringstream os;
      os << "{\"type\":\"finding\",\"kind\":\"" << telemetry::json_escape(f.kind)
         << "\",\"subject\":\"" << telemetry::json_escape(f.subject)
         << "\",\"e0\":" << f.e0 << ",\"e1\":" << f.e1 << ",\"text\":\""
         << telemetry::json_escape(f.text) << "\"}";
      stream_line_locked(os.str());
    }
  }
  if (hub.ids().obsplane_findings >= 0 && !findings_.empty())
    hub.add(hub.ids().obsplane_findings, 0, findings_.size());

  if (stream_) {
    std::ostringstream os;
    os << "{\"type\":\"run_end\",\"epochs\":"
       << epochs_emitted_.load(std::memory_order_relaxed)
       << ",\"events\":" << ingested_.load(std::memory_order_relaxed)
       << ",\"drops\":" << events_dropped()
       << ",\"findings\":" << findings_.size() << "}";
    stream_line_locked(os.str());
    std::fflush(stream_);
  }
  mirror_counters_locked();
  update_mem_gauge_locked();
  if (!cfg_.prom_path.empty()) {
    std::ofstream f(cfg_.prom_path, std::ios::trunc);
    if (f) write_prometheus_locked(f);
  }
  finalized_.store(true, std::memory_order_release);
}

CorrelateInput Plane::build_correlate_input_locked() const {
  CorrelateInput in;
  in.epoch_s = cfg_.epoch_s;
  in.max_epoch = emitted_upto_;
  in.plan = engine_.config().fault_plan.get();
  in.nic = &engine_.nic();
  const auto& placement = engine_.config().placement;
  in.node_of_rank.reserve(placement.size());
  // fabric().node_of, not topology().node_of: on fat-tree / dragonfly
  // hierarchies depth 1 is a pod / router group, not the NIC domain.
  for (int leaf : placement)
    in.node_of_rank.push_back(engine_.fabric().node_of(leaf));
  in.retransmits_by_epoch = retransmits_by_epoch_;
  in.mismatch_by_epoch = mismatch_by_epoch_;
  in.events = events_;
  return in;
}

// ----------------------------------------------------------- governor rung

void Plane::widen_windows() {
  std::lock_guard<std::mutex> lk(drain_mx_);
  const int merge = merge_.load(std::memory_order_relaxed) * 2;
  merge_.store(merge, std::memory_order_relaxed);
  for (auto& kv : series_) {
    Series& s = kv.second;
    std::deque<std::pair<long, std::uint64_t>> rekeyed;
    for (const auto& b : s.buckets) {
      const long me = b.first / 2;
      if (!rekeyed.empty() && rekeyed.back().first == me)
        rekeyed.back().second += b.second;
      else
        rekeyed.emplace_back(me, b.second);
    }
    s.buckets.swap(rekeyed);
  }
  engine_.telemetry().gauge_set(engine_.telemetry().ids().obsplane_window_merge,
                                0, merge);
}

// ------------------------------------------------------------------ queries

std::uint64_t Plane::events_attempted() const {
  // Exact once rank threads are quiescent (joins synchronize); a mid-run
  // read is a monotone approximation.
  std::uint64_t n = 0;
  for (const auto& p : producers_) n += p->seq;
  std::lock_guard<std::mutex> lk(frame_mx_);
  return n + frame_attempted_;
}

std::uint64_t Plane::events_dropped() const {
  std::uint64_t n = frame_dropped_.load(std::memory_order_relaxed);
  for (const auto& p : producers_)
    n += p->dropped.load(std::memory_order_relaxed);
  return n;
}

std::size_t Plane::series_count() const {
  std::lock_guard<std::mutex> lk(drain_mx_);
  return series_.size();
}

namespace {
int slot_by_name(const std::string& metric) {
  for (int s = 0; s < kAllSlots; ++s)
    if (metric == kSlotNames[s]) return s;
  return -1;
}
}  // namespace

std::vector<std::pair<long, std::uint64_t>> Plane::series_buckets(
    int rank, const std::string& metric) const {
  std::vector<std::pair<long, std::uint64_t>> out;
  const int slot = slot_by_name(metric);
  if (slot < 0) return out;
  std::lock_guard<std::mutex> lk(drain_mx_);
  const auto it = series_.find({rank, slot});
  if (it == series_.end()) return out;
  out.assign(it->second.buckets.begin(), it->second.buckets.end());
  return out;
}

std::uint64_t Plane::series_quantile(int rank, const std::string& metric,
                                     double q) const {
  const int slot = slot_by_name(metric);
  if (slot < 0) return 0;
  std::lock_guard<std::mutex> lk(drain_mx_);
  const auto it = series_.find({rank, slot});
  if (it == series_.end()) return 0;
  return it->second.sketch.quantile(q);
}

std::vector<Finding> Plane::findings() const {
  std::lock_guard<std::mutex> lk(drain_mx_);
  return findings_;
}

// --------------------------------------------------------------- prometheus

void Plane::write_prometheus(std::ostream& os) {
  std::lock_guard<std::mutex> lk(drain_mx_);
  write_prometheus_locked(os);
}

void Plane::write_prometheus_locked(std::ostream& os) const {
  os << "# mpim streaming plane exposition (job " << cfg_.job << ")\n";
  for (int s = 0; s < kAllSlots; ++s) {
    bool any = false;
    for (int r = 0; r < nranks_; ++r) {
      const auto it = series_.find({r, s});
      if (it == series_.end()) continue;
      if (!any) {
        os << "# TYPE mpim_stream_" << kSlotNames[s] << "_total counter\n";
        any = true;
      }
      os << "mpim_stream_" << kSlotNames[s] << "_total{job=\"" << cfg_.job
         << "\",rank=\"" << r << "\"} " << it->second.total << "\n";
    }
    if (!any) continue;
    for (int r = 0; r < nranks_; ++r) {
      const auto it = series_.find({r, s});
      if (it == series_.end()) continue;
      for (double q : {0.5, 0.99}) {
        os << "mpim_stream_" << kSlotNames[s] << "_epoch_delta{job=\""
           << cfg_.job << "\",rank=\"" << r << "\",quantile=\"" << q << "\"} "
           << it->second.sketch.quantile(q) << "\n";
      }
    }
  }
  os << "# TYPE mpim_obsplane_events_total counter\n";
  os << "mpim_obsplane_events_total{job=\"" << cfg_.job << "\"} "
     << ingested_.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE mpim_obsplane_drops_total counter\n";
  os << "mpim_obsplane_drops_total{job=\"" << cfg_.job << "\"} "
     << events_dropped() << "\n";
  os << "# TYPE mpim_obsplane_epochs_total counter\n";
  os << "mpim_obsplane_epochs_total{job=\"" << cfg_.job << "\"} "
     << epochs_emitted_.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE mpim_obsplane_window_merge gauge\n";
  os << "mpim_obsplane_window_merge{job=\"" << cfg_.job << "\"} "
     << merge_.load(std::memory_order_relaxed) << "\n";
}

}  // namespace mpim::obsplane
