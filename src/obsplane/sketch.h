#pragma once
// Mergeable sketch summaries for the streaming aggregation plane.
//
// Two bounded-memory summaries over streams of unsigned deltas:
//   * Log2Hist      -- fixed 64-bucket histogram keyed by bit width; exact
//                      counts, O(1) observe/merge, monotone bucket bounds.
//   * QuantileSketch -- a bounded value-sorted list of (value, weight)
//                      centroids; when full the adjacent pair with the
//                      smallest combined weight collapses into its weighted
//                      mean (streaming-histogram compaction, a la Ben-Haim &
//                      Tom-Tov). Deterministic (no RNG) so runs are
//                      reproducible; quantile answers are approximate but
//                      rank error per merge is bounded by the lighter side,
//                      and light fresh centroids merge first so heavy mass
//                      and the distribution tails survive.
//
// Both are POD-ish, copyable, and mergeable so the store can fold shard
// summaries together when the governor widens windows.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpim::obsplane {

class Log2Hist {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
  }

  void merge(const Log2Hist& other) {
    // Saturating adds: folding many long-lived shards must never wrap a
    // counter back toward zero and invert the quantile bounds.
    for (int i = 0; i < kBuckets; ++i)
      buckets_[static_cast<std::size_t>(i)] = sat_add(
          buckets_[static_cast<std::size_t>(i)],
          other.buckets_[static_cast<std::size_t>(i)]);
    count_ = sat_add(count_, other.count_);
    sum_ = sat_add(sum_, other.sum_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t bucket(int i) const { return buckets_[static_cast<std::size_t>(i)]; }

  /// Upper bound of bucket i: values v with bucket_of(v)==i satisfy
  /// v <= bucket_upper(i).
  static std::uint64_t bucket_upper(int i) {
    if (i <= 0) return 0;
    if (i >= 63) return ~0ull;
    return (1ull << i) - 1ull;
  }

  /// Upper bound on the q-quantile (0 <= q <= 1): the upper edge of the
  /// first bucket whose cumulative count reaches q*count.
  std::uint64_t percentile_bound(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double target = q * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += buckets_[static_cast<std::size_t>(i)];
      if (static_cast<double>(cum) >= target && cum > 0) return bucket_upper(i);
    }
    return bucket_upper(kBuckets - 1);
  }

  static int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    int w = 0;
    while (v > 1) {
      v >>= 1;
      ++w;
    }
    return w + 1 > kBuckets - 1 ? kBuckets - 1 : w + 1;
  }

 private:
  static std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
    return a > ~0ull - b ? ~0ull : a + b;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

class QuantileSketch {
 public:
  static constexpr std::size_t kCapacity = 64;

  void observe(std::uint64_t v) { add(v, 1); }

  void merge(const QuantileSketch& other) {
    for (const auto& it : other.items_) add(it.value, it.weight);
  }

  std::uint64_t count() const { return n_; }

  /// Approximate q-quantile over everything observed (weighted). Items are
  /// kept value-sorted by add(), so this is a single cumulative-weight scan.
  std::uint64_t quantile(double q) const {
    if (items_.empty()) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t total = 0;
    for (const auto& it : items_) total += it.weight;
    const double target = q * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (const auto& it : items_) {
      cum += it.weight;
      if (static_cast<double>(cum) >= target) return it.value;
    }
    return items_.back().value;
  }

  std::size_t stored() const { return items_.size(); }

 private:
  struct Item {
    std::uint64_t value;
    std::uint64_t weight;
  };

  void add(std::uint64_t v, std::uint64_t w) {
    if (w == 0) return;
    const auto pos = std::lower_bound(
        items_.begin(), items_.end(), v,
        [](const Item& it, std::uint64_t x) { return it.value < x; });
    if (pos != items_.end() && pos->value == v) {
      pos->weight += w;  // exact duplicate: no new centroid needed
    } else {
      items_.insert(pos, Item{v, w});
    }
    n_ += w;
    if (items_.size() > kCapacity) merge_closest_pair();
  }

  // Collapse the adjacent pair with the smallest combined weight into one
  // centroid at the pair's weighted mean. Fresh weight-1 centroids merge
  // first, so heavy (old) centroids and the distribution tails survive and
  // the quantile estimate does not drift with sorted arrival order.
  void merge_closest_pair() {
    std::size_t best = 0;
    std::uint64_t best_w = ~0ull;
    for (std::size_t i = 0; i + 1 < items_.size(); ++i) {
      const std::uint64_t cw = items_[i].weight + items_[i + 1].weight;
      if (cw < best_w) {
        best_w = cw;
        best = i;
      }
    }
    const Item& lo = items_[best];
    const Item& hi = items_[best + 1];
    const long double mean =
        (static_cast<long double>(lo.value) * lo.weight +
         static_cast<long double>(hi.value) * hi.weight) /
        static_cast<long double>(best_w);
    items_[best] = Item{static_cast<std::uint64_t>(mean), best_w};
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }

  std::vector<Item> items_;
  std::uint64_t n_ = 0;
};

}  // namespace mpim::obsplane
