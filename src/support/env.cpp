#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace mpim::support {

namespace {

/// True when everything from `p` to the end of the string is whitespace.
bool only_trailing_space(const char* p) {
  for (; *p != '\0'; ++p)
    if (std::isspace(static_cast<unsigned char>(*p)) == 0) return false;
  return true;
}

}  // namespace

EnvValue<double> env_positive_double(const char* name) {
  EnvValue<double> out;
  const char* env = std::getenv(name);
  if (env == nullptr) return out;
  out.raw = env;
  out.status = EnvValue<double>::Status::invalid;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(env, &end);
  if (end == env || !only_trailing_space(end)) return out;
  if (errno == ERANGE || !std::isfinite(v) || !(v > 0.0)) return out;
  out.status = EnvValue<double>::Status::ok;
  out.value = v;
  return out;
}

EnvValue<std::uint64_t> env_positive_u64(const char* name) {
  EnvValue<std::uint64_t> out;
  const char* env = std::getenv(name);
  if (env == nullptr) return out;
  out.raw = env;
  out.status = EnvValue<std::uint64_t>::Status::invalid;
  // strtoull accepts a leading minus sign (wrapping the value); reject any
  // string whose first non-space character is not a digit.
  const char* p = env;
  while (std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  if (std::isdigit(static_cast<unsigned char>(*p)) == 0) return out;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p || !only_trailing_space(end)) return out;
  if (errno == ERANGE || v == 0) return out;
  out.status = EnvValue<std::uint64_t>::Status::ok;
  out.value = static_cast<std::uint64_t>(v);
  return out;
}

EnvValue<int> env_choice(const char* name, const char* const* choices,
                         int num_choices) {
  EnvValue<int> out;
  const char* env = std::getenv(name);
  if (env == nullptr) return out;
  out.raw = env;
  out.status = EnvValue<int>::Status::invalid;
  const char* b = env;
  while (std::isspace(static_cast<unsigned char>(*b)) != 0) ++b;
  const char* e = b;
  while (*e != '\0' && std::isspace(static_cast<unsigned char>(*e)) == 0) ++e;
  if (e == b || !only_trailing_space(e)) return out;
  for (int i = 0; i < num_choices; ++i) {
    const char* c = choices[i];
    const char* p = b;
    for (; p != e && *c != '\0'; ++p, ++c)
      if (std::tolower(static_cast<unsigned char>(*p)) !=
          std::tolower(static_cast<unsigned char>(*c)))
        break;
    if (p == e && *c == '\0') {
      out.status = EnvValue<int>::Status::ok;
      out.value = i;
      return out;
    }
  }
  return out;
}

EnvValue<bool> env_bool(const char* name) {
  static const char* const kWords[] = {"0",  "1",   "false", "true",
                                       "off", "on",  "no",    "yes"};
  const EnvValue<int> word = env_choice(name, kWords, 8);
  EnvValue<bool> out;
  out.raw = word.raw;
  out.status = word.ok() ? EnvValue<bool>::Status::ok
               : word.invalid() ? EnvValue<bool>::Status::invalid
                                : EnvValue<bool>::Status::unset;
  if (word.ok()) out.value = (word.value % 2) == 1;  // odd indices are truthy
  return out;
}

EnvValue<std::string> env_nonempty_string(const char* name) {
  EnvValue<std::string> out;
  const char* env = std::getenv(name);
  if (env == nullptr) return out;
  out.raw = env;
  out.status = EnvValue<std::string>::Status::invalid;
  for (const char* p = env; *p != '\0'; ++p) {
    if (std::isspace(static_cast<unsigned char>(*p)) == 0) {
      out.status = EnvValue<std::string>::Status::ok;
      out.value = env;
      return out;
    }
  }
  return out;
}

}  // namespace mpim::support
