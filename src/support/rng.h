// Deterministic pseudo-random number generation.
//
// All experiments in this repository must be reproducible bit-for-bit, so
// nothing may use std::random_device or rely on unseeded global state.
// Xoshiro256** is small, fast and has well-understood statistical quality.
#pragma once

#include <cstdint>
#include <limits>

#include "support/error.h"

namespace mpim {

/// SplitMix64, used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    check(lo <= hi, "uniform_u64: empty range");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + draw % span;
  }

  int uniform_int(int lo, int hi) {
    return static_cast<int>(
        uniform_u64(0, static_cast<std::uint64_t>(hi - lo))) + lo;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher-Yates shuffle with a deterministic Rng.
template <typename Container>
void shuffle(Container& items, Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_u64(0, i - 1));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

}  // namespace mpim
