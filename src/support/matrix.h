// Dense row-major matrix. Used for communication matrices gathered from the
// monitoring library and by TreeMatch aggregation at small/medium orders.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/error.h"

namespace mpim {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix square(std::size_t n, T fill = T{}) {
    return Matrix(n, n, fill);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    check(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    check(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Row-major flat view (the layout the MPI_M_*gather_data calls use).
  std::span<T> flat() { return data_; }
  std::span<const T> flat() const { return data_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> row(std::size_t r) {
    check(r < rows_, "Matrix row out of range");
    return std::span<T>(data_).subspan(r * cols_, cols_);
  }
  std::span<const T> row(std::size_t r) const {
    check(r < rows_, "Matrix row out of range");
    return std::span<const T>(data_).subspan(r * cols_, cols_);
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  T sum() const {
    T acc{};
    for (const T& v : data_) acc += v;
    return acc;
  }

  /// Returns w with w(i,j) = (*this)(i,j) + (*this)(j,i); TreeMatch works on
  /// symmetrized affinity.
  Matrix symmetrized() const {
    check(rows_ == cols_, "symmetrized() needs a square matrix");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j)
        out(i, j) = (*this)(i, j) + (*this)(j, i);
    return out;
  }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using CommMatrix = Matrix<unsigned long>;  // counts or bytes, as in the paper
using DoubleMatrix = Matrix<double>;

}  // namespace mpim
