// Error handling primitives shared by every module.
//
// The library proper (mpimon) reports errors through MPI-style integer
// return codes; everything underneath (engine, topology, placement) uses
// exceptions for programming errors and unrecoverable states.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mpim {

/// Thrown for unrecoverable internal errors (broken invariants, misuse of
/// the simulator API). User-facing MPI_M_* calls never let this escape.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the engine detects that every rank is blocked and no message
/// can ever arrive (global deadlock in the simulated program). The what()
/// string is a structured report naming every blocked rank, the operation
/// it is blocked in and its virtual clock.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Thrown when an operation depends on a rank that crashed (FaultPlan rank
/// crash). Carries enough context for failure-aware callers to degrade
/// instead of aborting.
class RankFailedError : public Error {
 public:
  RankFailedError(int world_rank, double crash_time_s, const std::string& what)
      : Error(what), world_rank_(world_rank), crash_time_s_(crash_time_s) {}

  int world_rank() const { return world_rank_; }
  double crash_time_s() const { return crash_time_s_; }

 private:
  int world_rank_ = -1;
  double crash_time_s_ = 0.0;
};

/// Thrown when an operation runs on a communicator that a member revoked
/// (ULFM-style `comm_revoke`). Revocation is a recovery signal: survivors
/// catch this, agree on the failure, and shrink to a fresh communicator.
class CommRevokedError : public Error {
 public:
  CommRevokedError(int context_id, const std::string& what)
      : Error(what), context_id_(context_id) {}

  int context_id() const { return context_id_; }

 private:
  int context_id_ = -1;
};

/// Thrown when a timed receive gives up before a matching message arrives.
class TimeoutError : public Error {
 public:
  TimeoutError(double timeout_s, const std::string& what)
      : Error(what), timeout_s_(timeout_s) {}

  double timeout_s() const { return timeout_s_; }

 private:
  double timeout_s_ = 0.0;
};

[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc =
                                  std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" +
              std::to_string(loc.line()) + ": " + msg);
}

/// Internal invariant check. Cheap enough to keep enabled in release
/// builds: the simulator is correctness-first.
inline void check(bool cond, const char* msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

inline void check(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

}  // namespace mpim
