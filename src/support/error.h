// Error handling primitives shared by every module.
//
// The library proper (mpimon) reports errors through MPI-style integer
// return codes; everything underneath (engine, topology, placement) uses
// exceptions for programming errors and unrecoverable states.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mpim {

/// Thrown for unrecoverable internal errors (broken invariants, misuse of
/// the simulator API). User-facing MPI_M_* calls never let this escape.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when the engine detects that every rank is blocked and no message
/// can ever arrive (global deadlock in the simulated program).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg,
                              std::source_location loc =
                                  std::source_location::current()) {
  throw Error(std::string(loc.file_name()) + ":" +
              std::to_string(loc.line()) + ": " + msg);
}

/// Internal invariant check. Cheap enough to keep enabled in release
/// builds: the simulator is correctness-first.
inline void check(bool cond, const char* msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

inline void check(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

}  // namespace mpim
