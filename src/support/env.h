// Strict environment-variable parsing.
//
// std::strtod-style "parse a prefix, ignore the rest" semantics let typos
// like "5s", "-3" or "nan" silently configure a subsystem with garbage.
// These helpers parse the *whole* string, validate the numeric range, and
// report exactly what happened so callers can log a structured warning and
// fall back to their default instead of guessing.
//
// support cannot depend on telemetry, so no logging happens here; callers
// own the warning.
#pragma once

#include <cstdint>
#include <string>

namespace mpim::support {

/// Outcome of parsing one environment variable.
template <typename T>
struct EnvValue {
  enum class Status {
    unset,    ///< variable absent from the environment
    ok,       ///< parsed and validated; `value` holds the result
    invalid,  ///< set but rejected (garbage, partial parse, out of range)
  };
  Status status = Status::unset;
  T value{};        ///< valid only when status == ok
  std::string raw;  ///< original text when set (for diagnostics)

  bool ok() const { return status == Status::ok; }
  bool invalid() const { return status == Status::invalid; }
};

/// Parses `name` as a finite double > 0. Trailing whitespace is accepted;
/// anything else after the number (units, garbage) is rejected, as are
/// NaN, infinities, zero, negatives, and empty strings.
EnvValue<double> env_positive_double(const char* name);

/// Parses `name` as a decimal std::uint64_t > 0. Rejects signs, NaN/inf
/// spellings, partial parses, zero, and values that overflow.
EnvValue<std::uint64_t> env_positive_u64(const char* name);

/// Matches `name` against a closed set of keywords (case-insensitive,
/// surrounding whitespace tolerated); `value` is the index into `choices`.
/// Anything else -- partial words, numbers, empty strings -- is invalid.
EnvValue<int> env_choice(const char* name, const char* const* choices,
                         int num_choices);

/// Parses `name` as a boolean switch: 0/1, true/false, on/off, yes/no
/// (case-insensitive, surrounding whitespace tolerated). Anything else --
/// "2", "enable", empty strings -- is invalid.
EnvValue<bool> env_bool(const char* name);

/// Accepts `name` as a file path: any string with at least one
/// non-whitespace character. Empty and whitespace-only values are invalid
/// (they would silently create a file named "" or " "); `value` keeps the
/// text verbatim, untrimmed, so relative paths with spaces still work.
EnvValue<std::string> env_nonempty_string(const char* name);

}  // namespace mpim::support
