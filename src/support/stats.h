// Descriptive statistics and the Welch unpaired t confidence interval used
// by the Fig. 4 overhead experiment ("95% confidence interval computed with
// the student T test using unpaired measures and unequal variance").
#pragma once

#include <cstddef>
#include <span>

namespace mpim::stats {

double mean(std::span<const double> xs);
/// Unbiased sample variance (n-1 denominator). Requires xs.size() >= 2.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);  // copies and sorts internally

/// Quantile of the standard normal distribution (Acklam's algorithm,
/// relative error < 1.15e-9). p in (0, 1).
double normal_quantile(double p);

/// Quantile of Student's t distribution with `df` degrees of freedom
/// (Cornish-Fisher expansion around the normal quantile; accurate to a few
/// 1e-4 for df >= 3, exact limit as df -> inf). p in (0, 1).
double t_quantile(double p, double df);

struct WelchResult {
  double mean_diff = 0.0;   ///< mean(a) - mean(b)
  double ci_half = 0.0;     ///< half-width of the confidence interval
  double df = 0.0;          ///< Welch-Satterthwaite degrees of freedom
  double t_stat = 0.0;      ///< t statistic of the difference
  bool significant = false; ///< true iff 0 lies outside the interval
};

/// Two-sample Welch test: difference of means with a `confidence`
/// (e.g. 0.95) interval, unequal variances, unpaired samples.
WelchResult welch_interval(std::span<const double> a,
                           std::span<const double> b,
                           double confidence = 0.95);

}  // namespace mpim::stats
