// Text-table and CSV emission for the benchmark harnesses. Every bench
// binary prints the rows/series of the corresponding paper table or figure
// through this printer so the output format stays uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mpim {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with operator<< semantics.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({to_cell(cells)...});
  }

  std::size_t row_count() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Column-aligned plain text.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  template <typename T>
  static std::string to_cell(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (trailing-zero free).
std::string format_sig(double v, int digits = 4);

/// Human-readable byte count ("1.5 MB").
std::string format_bytes(double bytes);

/// Human-readable seconds ("12.3 ms", "4.5 us").
std::string format_seconds(double s);

template <typename T>
std::string Table::to_cell(const T& v) {
  if constexpr (std::is_floating_point_v<T>) {
    return format_sig(static_cast<double>(v));
  } else {
    return std::to_string(v);
  }
}

}  // namespace mpim
