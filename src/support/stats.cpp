#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.h"

namespace mpim::stats {

double mean(std::span<const double> xs) {
  check(!xs.empty(), "mean of empty sample");
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  check(xs.size() >= 2, "variance needs at least two samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  check(!xs.empty(), "median of empty sample");
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const std::size_t n = copy.size();
  return (n % 2 == 1) ? copy[n / 2] : 0.5 * (copy[n / 2 - 1] + copy[n / 2]);
}

double normal_quantile(double p) {
  check(p > 0.0 && p < 1.0, "normal_quantile: p must lie in (0,1)");
  // Peter Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > p_high) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double t_quantile(double p, double df) {
  check(df > 0.0, "t_quantile: df must be positive");
  const double z = normal_quantile(p);
  // Cornish-Fisher expansion of the t quantile in powers of 1/df
  // (Abramowitz & Stegun 26.7.5).
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  const double g1 = (z3 + z) / 4.0;
  const double g2 = (5.0 * z5 + 16.0 * z3 + 3.0 * z) / 96.0;
  const double g3 = (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / 384.0;
  return z + g1 / df + g2 / (df * df) + g3 / (df * df * df);
}

WelchResult welch_interval(std::span<const double> a,
                           std::span<const double> b, double confidence) {
  check(a.size() >= 2 && b.size() >= 2,
        "welch_interval needs >=2 samples per group");
  check(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");

  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = variance(a) / na;
  const double vb = variance(b) / nb;
  const double se2 = va + vb;

  WelchResult out;
  out.mean_diff = mean(a) - mean(b);
  if (se2 == 0.0) {
    // Degenerate samples: identical constants in each group.
    out.df = na + nb - 2.0;
    out.ci_half = 0.0;
    out.t_stat = (out.mean_diff == 0.0) ? 0.0
                                        : std::copysign(1e300, out.mean_diff);
    out.significant = out.mean_diff != 0.0;
    return out;
  }
  out.df = se2 * se2 /
           (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  const double se = std::sqrt(se2);
  const double tq = t_quantile(0.5 + confidence / 2.0, out.df);
  out.ci_half = tq * se;
  out.t_stat = out.mean_diff / se;
  out.significant = std::abs(out.mean_diff) > out.ci_half;
  return out;
}

}  // namespace mpim::stats
