#include "support/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "support/error.h"

namespace mpim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << csv_escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  check(os.good(), "cannot open CSV output file");
  write_csv(os);
}

std::string format_sig(double v, int digits) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (std::abs(bytes) >= 1000.0 && u < 4) {
    bytes /= 1000.0;
    ++u;
  }
  return format_sig(bytes, 4) + " " + units[u];
}

std::string format_seconds(double s) {
  const double a = std::abs(s);
  if (a >= 1.0) return format_sig(s, 4) + " s";
  if (a >= 1e-3) return format_sig(s * 1e3, 4) + " ms";
  if (a >= 1e-6) return format_sig(s * 1e6, 4) + " us";
  return format_sig(s * 1e9, 4) + " ns";
}

}  // namespace mpim
